// Command weartest regenerates the paper's wear-out experiments:
//
//	weartest -fig 2        Figure 2: GiB per indicator increment, external chips
//	weartest -fig 3        Figure 3: hours per increment, phones + chips
//	weartest -fig 4        Figure 4: GiB per increment, Moto E ext4 vs F2FS
//	weartest -table 1      Table 1: hybrid Type A/B wear across workload phases
//	weartest -envelope     §2.3 vs §4.3: back-of-the-envelope vs measured
//	weartest -budget       §4.4: BLU budget phones brick without indicators
//
// Each experiment runs on capacity-scaled devices (default -scale 256) and
// reports results at full device scale; -maxlevel bounds how deep into the
// device's lifetime the run goes (11 = to estimated end of life).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"flashwear/internal/experiments"
	"flashwear/internal/ftl"
	"flashwear/internal/profiling"
	"flashwear/internal/report"
	"flashwear/internal/telemetry"
	"flashwear/internal/wtrace"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2, 3, or 4)")
	table := flag.Int("table", 0, "table to regenerate (1)")
	envelope := flag.Bool("envelope", false, "compare envelope estimate vs measured")
	budget := flag.Bool("budget", false, "run the BLU budget-phone bricking experiment")
	scale := flag.Int64("scale", 256, "device capacity divisor (1 = full size, slow)")
	maxLevel := flag.Int("maxlevel", 11, "stop once the Type B indicator reaches this level")
	metricsCSV := flag.String("metrics-csv", "", "write sampled per-run telemetry here in long form (\"-\" = stdout)")
	metricsEvery := flag.Duration("metrics-every", 24*time.Hour, "full-scale sampling cadence for -metrics-csv")
	wearLedger := flag.String("wear-ledger", "", "write per-run wear-attribution ledgers here as labeled CSV (\"-\" = stdout)")
	wearTrace := flag.String("wear-trace", "", "write a combined Chrome trace-event JSON (one process per run) here")
	pprofCPU := flag.String("pprof-cpu", "", "write a CPU profile of the simulator to this file")
	pprofHeap := flag.String("pprof-heap", "", "write a heap profile to this file at exit")
	flag.Parse()

	var stopCPU func() error
	if *pprofCPU != "" {
		stop, err := profiling.StartCPU(*pprofCPU)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weartest:", err)
			os.Exit(1)
		}
		stopCPU = stop
	}

	cfg := experiments.Config{
		Scale:    *scale,
		MaxLevel: *maxLevel,
		Progress: func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	}

	var metricsOut *os.File
	if *metricsCSV != "" {
		metricsOut = os.Stdout
		if *metricsCSV != "-" {
			f, err := os.Create(*metricsCSV)
			if err != nil {
				fmt.Fprintln(os.Stderr, "weartest:", err)
				os.Exit(1)
			}
			defer f.Close()
			metricsOut = f
		}
		mw := &metricsWriter{w: metricsOut}
		cfg.MetricsEvery = *metricsEvery
		cfg.MetricsSink = mw.sink
	}

	ran := false
	fail := func(err error) {
		if stopCPU != nil {
			stopCPU()
		}
		fmt.Fprintln(os.Stderr, "weartest:", err)
		os.Exit(1)
	}

	// Wear attribution: every wear run hands its tracer over when it ends;
	// ledgers stream out as labeled CSV, Chrome processes collect for one
	// combined trace file (one process per run).
	var ww *wearWriter
	if *wearLedger != "" || *wearTrace != "" {
		ww = &wearWriter{ledgerPath: *wearLedger}
		if *wearLedger != "" && *wearLedger != "-" {
			f, err := os.Create(*wearLedger)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			ww.ledger = f
		} else if *wearLedger == "-" {
			ww.ledger = os.Stdout
		}
		cfg.WearSink = ww.sink
		if *wearTrace != "" {
			cfg.WearEvents = 1 << 20
			ww.collect = true
		}
	}

	switch *fig {
	case 0:
	case 2:
		ran = true
		runs, err := experiments.Figure2(cfg)
		if err != nil {
			fail(err)
		}
		printWearRuns("Figure 2: I/O to increment the wear-out indicator", runs)
	case 3:
		ran = true
		runs, err := experiments.Figure3(cfg)
		if err != nil {
			fail(err)
		}
		tbl := report.NewTable(
			"Figure 3: time to increment the wear-out indicator",
			"Config", "Increment", "Hours", "Host GiB")
		chart := report.NewBarChart("", "h/increment")
		for _, r := range runs {
			incs := r.Report.IncrementsFor(ftl.PoolB)
			for _, inc := range incs {
				tbl.AddRow(r.Label, fmt.Sprintf("%d-%d", inc.FromLevel, inc.ToLevel), inc.Hours, inc.HostGiB)
			}
			if len(incs) > 0 {
				chart.Add(r.Label, incs[len(incs)-1].Hours)
			}
		}
		tbl.Render(os.Stdout)
		fmt.Println()
		chart.Render(os.Stdout)
	case 4:
		ran = true
		runs, err := experiments.Figure4(cfg)
		if err != nil {
			fail(err)
		}
		printWearRuns("Figure 4: I/O per increment, Moto E Ext4 vs F2FS", runs)
	default:
		fail(fmt.Errorf("unknown figure %d", *fig))
	}

	if *table == 1 {
		ran = true
		rep, err := experiments.Table1(cfg)
		if err != nil {
			fail(err)
		}
		tbl := report.NewTable(
			"Table 1: eMMC 16GB hybrid wear-out indicators over time",
			"Pool", "Indic.", "I/O Vol (GiB)", "Time (h)", "I/O Pattern", "Space Util")
		for _, inc := range rep.Increments {
			tbl.AddRow(inc.Pool.String(),
				fmt.Sprintf("%d-%d", inc.FromLevel, inc.ToLevel),
				inc.HostGiB, inc.Hours, inc.Pattern,
				fmt.Sprintf("%.0f%%", inc.SpaceUtil*100))
		}
		tbl.Render(os.Stdout)
	} else if *table != 0 {
		fail(fmt.Errorf("unknown table %d", *table))
	}

	if *envelope {
		ran = true
		runs, err := experiments.Figure2(cfg)
		if err != nil {
			fail(err)
		}
		rows := experiments.EnvelopeComparison(runs, map[string]int64{
			"eMMC 8GB":  8 << 30,
			"eMMC 16GB": 16 << 30,
		})
		tbl := report.NewTable(
			"Back-of-the-envelope (§2.3) vs measured (§4.3)",
			"Device", "Envelope GiB/10%", "Measured GiB/10%", "Shortfall")
		for _, r := range rows {
			tbl.AddRow(r.Device, r.EnvelopeGiBPer, r.MeasuredGiBPer,
				fmt.Sprintf("%.1fx", r.ShortfallFactor))
		}
		tbl.Render(os.Stdout)
	}

	if *budget {
		ran = true
		runs, err := experiments.BudgetPhones(cfg)
		if err != nil {
			fail(err)
		}
		tbl := report.NewTable(
			"Budget phones (§4.4): bricked without reliable indicators",
			"Phone", "Days to brick", "Host GiB", "Indicator usable")
		for _, r := range runs {
			tbl.AddRow(r.Label, r.Days, r.HostGiB, r.IndicatorSeen)
		}
		tbl.Render(os.Stdout)
	}

	if ww != nil && *wearTrace != "" {
		f, err := os.Create(*wearTrace)
		if err != nil {
			fail(err)
		}
		err = wtrace.WriteChrome(f, ww.procs...)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
	}
	if stopCPU != nil {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, "weartest:", err)
		}
	}
	if *pprofHeap != "" {
		if err := profiling.WriteHeap(*pprofHeap); err != nil {
			fmt.Fprintln(os.Stderr, "weartest:", err)
			os.Exit(1)
		}
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// wearWriter receives each wear run's tracer: ledgers stream to one
// labeled CSV (counts multiplied back to full scale), Chrome processes
// accumulate for the combined trace file.
type wearWriter struct {
	ledgerPath string
	ledger     io.Writer
	headerDone bool
	collect    bool
	procs      []wtrace.ProcessTrace
}

func (ww *wearWriter) sink(label string, eff int64, tr *wtrace.Tracer) {
	if ww.ledger != nil {
		snap := tr.Ledger().Snapshot()
		snap.Scale(eff)
		if err := snap.WriteLabeledCSV(ww.ledger, label, !ww.headerDone); err != nil {
			fmt.Fprintln(os.Stderr, "weartest: wear ledger:", err)
		}
		ww.headerDone = true
	}
	if ww.collect {
		p := tr.Process(label)
		p.Pid = len(ww.procs) + 1
		ww.procs = append(ww.procs, p)
	}
}

// metricsWriter renders sampled series in long form — one
// (label,hours,metric,value) row per instrument per sample — so runs with
// different instrument sets (hybrid vs plain devices, ext4 vs F2FS) share
// one plottable file. Hours are full-scale: series times are at device
// scale and multiply back by the run's effective scale divisor.
type metricsWriter struct {
	w          io.Writer
	headerDone bool
}

func (mw *metricsWriter) sink(label string, eff int64, s *telemetry.Series) {
	if !mw.headerDone {
		fmt.Fprintln(mw.w, "label,hours,metric,value")
		mw.headerDone = true
	}
	for _, row := range s.Rows {
		hours := strconv.FormatFloat(row.At.Hours()*float64(eff), 'g', -1, 64)
		for i, v := range row.Values {
			fmt.Fprintf(mw.w, "%s,%s,%s,%s\n", label, hours, s.Columns[i], telemetry.FormatCell(s.Kinds[i], v))
		}
	}
}

func printWearRuns(title string, runs []experiments.WearRun) {
	tbl := report.NewTable(title, "Device", "Increment", "Host GiB", "Hours", "WA")
	for _, r := range runs {
		for _, inc := range r.Report.IncrementsFor(ftl.PoolB) {
			tbl.AddRow(r.Label, fmt.Sprintf("%d-%d", inc.FromLevel, inc.ToLevel),
				inc.HostGiB, inc.Hours, r.Report.FinalWA)
		}
	}
	tbl.Render(os.Stdout)
	for _, r := range runs {
		fmt.Printf("%s: mean %.0f GiB per increment, total %.0f GiB over %.0f h, bricked=%v\n",
			r.Label, r.Report.MeanHostGiBPerIncrement(ftl.PoolB),
			r.Report.TotalHostGiB, r.Report.TotalHours, r.Report.Bricked)
	}
}
