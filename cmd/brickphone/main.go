// Command brickphone runs §4.4's attack end to end: an unprivileged app on
// a simulated phone rewrites four 100 MB files in its private storage until
// the flash is destroyed, optionally in stealth mode (I/O only while
// charging with the screen off, evading the power and process monitors).
//
// Usage:
//
//	brickphone [-phone "Moto E 8GB"] [-fs ext4|f2fs] [-stealth] [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/report"
	"flashwear/internal/simclock"
)

func main() {
	phoneName := flag.String("phone", "Moto E 8GB", "device profile to attack")
	fsKind := flag.String("fs", "ext4", "file system: ext4 or f2fs")
	stealth := flag.Bool("stealth", false, "run only while charging with the screen off")
	scale := flag.Int64("scale", 256, "device capacity divisor")
	flag.Parse()

	prof, err := device.ProfileByName(*phoneName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brickphone:", err)
		os.Exit(1)
	}
	eff := prof.EffectiveScale(*scale)
	clock := simclock.New()
	phone, err := android.NewPhone(android.Config{
		Profile: prof.Scaled(*scale),
		FS:      android.FSKind(*fsKind),
	}, clock)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brickphone:", err)
		os.Exit(1)
	}
	app, err := phone.InstallApp("com.innocuous.wallpaper")
	if err != nil {
		fmt.Fprintln(os.Stderr, "brickphone:", err)
		os.Exit(1)
	}
	clock.AdvanceTo(10 * time.Hour) // mid-morning install

	mode := core.Continuous
	if *stealth {
		mode = core.Stealth
	}
	fmt.Fprintf(os.Stderr, "attacking %s (%s, %v mode, scale %d)...\n",
		prof.Name, *fsKind, mode, eff)

	atk := core.NewAttack(app, mode, eff)
	rep, err := atk.Run(phone, 10*365*24*time.Hour)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brickphone:", err)
		os.Exit(1)
	}

	fmt.Printf("Attack report for %s (%s, %v):\n", prof.Name, *fsKind, rep.Mode)
	fmt.Printf("  bricked:              %v\n", rep.Bricked)
	fmt.Printf("  host I/O issued:      %.0f GiB (footprint %.1f%% of capacity)\n",
		rep.HostGiB, rep.FootprintPct)
	fmt.Printf("  active I/O time:      %.1f h\n", rep.ActiveHours)
	fmt.Printf("  wall-clock time:      %.1f h (%.1f days, duty cycle %.0f%%)\n",
		rep.Hours, rep.Hours/24, rep.DutyCycle*100)
	fmt.Printf("  PRE_EOL at end:       %d\n", rep.FinalPreEOL)
	fmt.Printf("  power monitor saw:    %.2f J attributed\n", rep.PowerJoulesAttributed)
	fmt.Printf("  process monitor saw:  %d sightings\n", rep.ProcessObservedCount)
	fmt.Println()

	tbl := report.NewTable("Wear indicator progression", "Pool", "Level", "Host GiB", "Hours")
	for _, inc := range rep.Increments {
		tbl.AddRow(inc.Pool.String(), fmt.Sprintf("%d-%d", inc.FromLevel, inc.ToLevel),
			inc.HostGiB, inc.Hours)
	}
	tbl.Render(os.Stdout)

}
