package wtrace

import "flashwear/internal/fs"

// TagFS wraps a mounted file system so every mutating operation through
// it runs under org: the wrapper sets the tracer's ambient origin on the
// way in and restores the previous one on the way out, so nested layers
// (FS journaling, FTL relocations triggered mid-write) inherit the tag.
// Read-only operations pass through untouched — they cannot program NAND.
//
// The android sandbox does its own tagging per app; TagFS is for the
// other write paths (workload file sets, appmodel writers, experiments)
// that talk to an fs.FileSystem directly.
func TagFS(inner fs.FileSystem, tr *Tracer, org Origin) fs.FileSystem {
	return &tagFS{inner: inner, tr: tr, org: org}
}

type tagFS struct {
	inner fs.FileSystem
	tr    *Tracer
	org   Origin
}

func (t *tagFS) Create(path string) (fs.File, error) {
	prev := t.tr.SetOrigin(t.org)
	f, err := t.inner.Create(path)
	t.tr.SetOrigin(prev)
	if err != nil {
		return nil, err
	}
	return &tagFile{inner: f, fs: t}, nil
}

func (t *tagFS) Open(path string) (fs.File, error) {
	f, err := t.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &tagFile{inner: f, fs: t}, nil
}

func (t *tagFS) Remove(path string) error {
	prev := t.tr.SetOrigin(t.org)
	err := t.inner.Remove(path)
	t.tr.SetOrigin(prev)
	return err
}

func (t *tagFS) Rename(oldPath, newPath string) error {
	prev := t.tr.SetOrigin(t.org)
	err := t.inner.Rename(oldPath, newPath)
	t.tr.SetOrigin(prev)
	return err
}

func (t *tagFS) Mkdir(path string) error {
	prev := t.tr.SetOrigin(t.org)
	err := t.inner.Mkdir(path)
	t.tr.SetOrigin(prev)
	return err
}

func (t *tagFS) ReadDir(path string) ([]fs.DirEntry, error) { return t.inner.ReadDir(path) }
func (t *tagFS) Stat(path string) (fs.FileInfo, error)      { return t.inner.Stat(path) }

func (t *tagFS) Sync() error {
	prev := t.tr.SetOrigin(t.org)
	err := t.inner.Sync()
	t.tr.SetOrigin(prev)
	return err
}

func (t *tagFS) Unmount() error {
	prev := t.tr.SetOrigin(t.org)
	err := t.inner.Unmount()
	t.tr.SetOrigin(prev)
	return err
}

func (t *tagFS) Name() string { return t.inner.Name() }

type tagFile struct {
	inner fs.File
	fs    *tagFS
}

func (f *tagFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *tagFile) WriteAt(p []byte, off int64) (int, error) {
	prev := f.fs.tr.SetOrigin(f.fs.org)
	n, err := f.inner.WriteAt(p, off)
	f.fs.tr.SetOrigin(prev)
	return n, err
}

func (f *tagFile) Truncate(size int64) error {
	prev := f.fs.tr.SetOrigin(f.fs.org)
	err := f.inner.Truncate(size)
	f.fs.tr.SetOrigin(prev)
	return err
}

func (f *tagFile) Sync() error {
	prev := f.fs.tr.SetOrigin(f.fs.org)
	err := f.inner.Sync()
	f.fs.tr.SetOrigin(prev)
	return err
}

func (f *tagFile) Size() int64 { return f.inner.Size() }

func (f *tagFile) Close() error {
	prev := f.fs.tr.SetOrigin(f.fs.org)
	err := f.inner.Close()
	f.fs.tr.SetOrigin(prev)
	return err
}
