package mitigation

import (
	"testing"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/device"
	"flashwear/internal/simclock"
	"flashwear/internal/wtrace"
)

// TestClassifierAgreesWithWearGroundTruth scores the §4.5 classifier
// against causal ground truth. The classifier only sees the OS-level write
// stream (app, bytes, time); the wear tracer measures what actually wore
// the flash — every program and erase, attributed through FS metadata,
// journaling, and GC. On a mixed workload (a bursty camera, a chatty
// small writer, a sustained attacker) the app the classifier blames must
// be the app that tops the physical-wear ledger, and nobody else may be
// flagged.
func TestClassifierAgreesWithWearGroundTruth(t *testing.T) {
	tr := wtrace.New()
	clock := simclock.New()
	prof := device.ProfileMotoE8().Scaled(512)
	// The budget reflects a real device's endurance; the study device gets
	// effectively unlimited endurance so the attacker cannot brick it
	// mid-test (same trick as experiments.ClassifierEval).
	prof.RatedPE = 1_000_000
	prof.FirmwareRatedPE = 1_000_000
	cls := NewClassifier(testBudget())

	phone, err := android.NewPhone(android.Config{
		Profile:   prof,
		FS:        android.FSExt4,
		Charging:  android.AlwaysOn(),
		Screen:    android.Never(),
		WearTrace: tr,
		// Observe-only hook: classify, never throttle.
		Throttle: func(app string, bytes int64, now time.Duration) time.Duration {
			cls.ObserveWrite(app, bytes, false, now)
			return 0
		},
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	install := func(name string) *android.App {
		app, err := phone.InstallApp(name)
		if err != nil {
			t.Fatalf("install %s: %v", name, err)
		}
		return app
	}
	camera := install("camera")
	chat := install("chat")
	attacker := install("wear-attack")

	camFile, err := camera.Storage().Create("/photo")
	if err != nil {
		t.Fatal(err)
	}
	chatFile, err := chat.Storage().Create("/db")
	if err != nil {
		t.Fatal(err)
	}
	atkFile, err := attacker.Storage().Create("/junk")
	if err != nil {
		t.Fatal(err)
	}

	// One simulated hour in 30 s slices. Camera: occasional 2 MiB burst
	// (large writes, low duty). Chat: one 4 KiB write per slice (small and
	// persistent, but a trickle). Attacker: 120 x 64 KiB overwrites per
	// slice, ~256 KiB/s sustained — far over the lifespan budget.
	big := make([]byte, 2<<20)
	blk := make([]byte, 64<<10)
	for slice := 0; slice < 120; slice++ {
		if slice%20 == 0 {
			if _, err := camFile.WriteAt(big, 0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := chatFile.WriteAt(blk[:4096], 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			if _, err := atkFile.WriteAt(blk, int64(i%16)*int64(len(blk))); err != nil {
				t.Fatal(err)
			}
		}
		if err := atkFile.Sync(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(30 * time.Second)
	}

	now := clock.Now()
	apps := []string{"camera", "chat", "wear-attack"}

	// The classifier's blame: highest score among the population.
	blamed, best := "", -1.0
	for _, name := range apps {
		if s := cls.Score(name, now); s > best {
			blamed, best = name, s
		}
	}
	// The ground truth: who actually wore the flash the most.
	snap := tr.Ledger().Snapshot()
	truth := snap.Top()

	if truth != "wear-attack" {
		rows := ""
		for _, r := range snap.Rows {
			rows += r.Origin + " "
		}
		t.Fatalf("ledger ground truth Top() = %q (origins: %s); the attacker did not dominate wear — workload miscalibrated", truth, rows)
	}
	if blamed != truth {
		t.Errorf("classifier blames %q (score %.2f), but the wear ledger says %q caused the most physical wear",
			blamed, best, truth)
	}
	if !cls.Malicious(truth, now) {
		t.Errorf("true top wearer %q not flagged (score %.2f)", truth, cls.Score(truth, now))
	}
	for _, name := range []string{"camera", "chat"} {
		if cls.Malicious(name, now) {
			t.Errorf("benign app %q flagged (score %.2f); ledger billed it %v",
				name, cls.Score(name, now), snap)
		}
	}

	// The ledger itself must still satisfy the decomposition identity at
	// this level of the stack — attribution through sandbox, FS and FTL
	// loses nothing.
	f := phone.Device().FTL()
	tot := snap.Totals()
	if got, want := tot.HostPages, f.Stats().HostPagesWritten; got != want {
		t.Errorf("ledger host pages = %d, FTL counted %d", got, want)
	}
	programs := f.MainChip().Stats().Programs
	if c := f.CacheChip(); c != nil {
		programs += c.Stats().Programs
	}
	if tot.PhysPages != programs {
		t.Errorf("ledger phys pages = %d, chips counted %d", tot.PhysPages, programs)
	}
}
