package fleet

import (
	"fmt"
	"runtime"
	"time"

	"flashwear/internal/device"
	"flashwear/internal/faultinject"
	"flashwear/internal/telemetry"
)

// Class is the workload class a simulated phone's app population falls
// into. The classes coarse-grain internal/appmodel: a phone is dominated
// by its heaviest writer, so the fleet samples one class per device and a
// daily write volume from that class's distribution.
type Class int

const (
	// ClassBenign is the normal population: camera + chat + updater,
	// roughly 100 MiB/day (appmodel.SampleBenignDailyBytes).
	ClassBenign Class = iota
	// ClassBuggy is an accidentally harmful app — the Spotify cache bug
	// [26] — writing tens of GiB/day (appmodel.SampleBuggyDailyBytes).
	ClassBuggy
	// ClassAttack is the paper's §4.4 deliberate wear attack: rewrites as
	// fast as the device accepts them, unpaced.
	ClassAttack
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassBenign:
		return "benign"
	case ClassBuggy:
		return "buggy"
	case ClassAttack:
		return "attack"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ProfileWeight is one entry of a device-model mix.
type ProfileWeight struct {
	Profile device.Profile
	Weight  float64
}

// ClassWeight is one entry of a workload-class mix.
type ClassWeight struct {
	Class  Class
	Weight float64
}

// Spec describes a fleet run. The zero value plus Devices is runnable:
// Defaults fills everything else. A Spec is a pure value — the same Spec
// produces byte-identical Results regardless of Workers.
type Spec struct {
	// Devices is the population size.
	Devices int
	// Workers is the parallelism; 0 means runtime.GOMAXPROCS(0).
	// Workers does not affect results, only wall-clock time.
	Workers int
	// Seed is the root seed every per-device seed derives from.
	Seed int64
	// Days is the simulated horizon per device, in full-scale days.
	Days float64
	// Scale divides device capacities (like the experiments' -scale);
	// volumes and times are multiplied back per device.
	Scale int64
	// ReqBytes is the rewrite request size the per-device workload
	// issues. Default 64 KiB: coarser than the paper's 4 KiB attack so a
	// run-to-brick device costs ~5M simulated page programs, not ~80M,
	// with write amplification within a few percent of the 4 KiB run.
	ReqBytes int64
	// StepBytes is the wear-indicator poll granularity (core.Runner).
	StepBytes int64
	// Profiles is the device-model mix; default DefaultProfileMix.
	Profiles []ProfileWeight
	// Classes is the workload mix; default DefaultClassMix.
	Classes []ClassWeight
	// Progress, if non-nil, is called after each completed device with
	// (done, total). It is called concurrently from worker goroutines and
	// must be safe for concurrent use.
	Progress func(done, total int)
	// MetricsEvery, when positive, samples every device's telemetry
	// registry at this full-scale cadence (e.g. 24h for a daily series)
	// and merges the samples into Result.Metrics. The merged series is a
	// pure function of the Spec — byte-identical across worker counts —
	// because every per-device sample is converted to full-scale integer
	// (or fixed-point) sums before aggregation. See DESIGN.md §7.
	MetricsEvery time.Duration
	// Faults, if non-nil and non-empty, injects hardware faults into every
	// device. Each device runs the plan re-seeded from (plan seed, device
	// seed), so fault schedules are independent across the population yet
	// a pure function of the Spec — determinism is preserved.
	Faults *faultinject.Plan
	// Telemetry, if non-nil, receives live per-worker progress counters
	// (fleet.devices_done{worker=N}, fleet.bricks{worker=N},
	// fleet.read_only{worker=N}). Unlike Result.Metrics these depend on
	// the schedule; they exist for monitoring a run, not for reproducible
	// output.
	Telemetry *telemetry.Registry
	// WearTrace, when true, attaches a wear-attribution tracer to every
	// device: setup (mkfs/mount/initial fill) runs as origin "os", the
	// workload as its class name, and the per-origin ledgers — scaled to
	// full-scale volumes like everything else — merge by origin name into
	// Result.Wear. Merging is integer-additive, so the ledger is a pure
	// function of the Spec, byte-identical across Workers (DESIGN.md §6).
	WearTrace bool
}

// DefaultProfileMix is a phone-population mix over the calibrated
// profiles: mid-range eMMC phones dominate, with a flagship UFS slice,
// a budget-phone tail, and a few phones running on adopted MicroSD.
func DefaultProfileMix() []ProfileWeight {
	return []ProfileWeight{
		{device.ProfileMotoE8(), 0.30},
		{device.ProfileEMMC8(), 0.20},
		{device.ProfileEMMC16(), 0.20},
		{device.ProfileSamsungS6(), 0.15},
		{device.ProfileBLU4(), 0.08},
		{device.ProfileBLU512(), 0.04},
		{device.ProfileUSD16(), 0.03},
	}
}

// DefaultClassMix: most phones are benign; a Spotify-scale bug reaches a
// few percent of devices (the bug shipped to everyone, but cache churn at
// harmful rates depends on usage); a small tail runs something actively
// hostile.
func DefaultClassMix() []ClassWeight {
	return []ClassWeight{
		{ClassBenign, 0.90},
		{ClassBuggy, 0.07},
		{ClassAttack, 0.03},
	}
}

// Defaults returns a copy with zero fields filled in.
func (s Spec) Defaults() Spec {
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.Days == 0 {
		s.Days = 365
	}
	if s.Scale <= 0 {
		s.Scale = 4096
	}
	if s.ReqBytes == 0 {
		s.ReqBytes = 64 << 10
	}
	if s.StepBytes == 0 {
		s.StepBytes = 4 << 20
	}
	if s.Profiles == nil {
		s.Profiles = DefaultProfileMix()
	}
	if s.Classes == nil {
		s.Classes = DefaultClassMix()
	}
	return s
}

// Validate reports the first invalid field of a defaulted Spec.
func (s Spec) Validate() error {
	switch {
	case s.Devices <= 0:
		return fmt.Errorf("fleet: Devices = %d", s.Devices)
	case s.Days <= 0:
		return fmt.Errorf("fleet: Days = %g", s.Days)
	case s.ReqBytes < 512:
		return fmt.Errorf("fleet: ReqBytes = %d", s.ReqBytes)
	case len(s.Profiles) == 0:
		return fmt.Errorf("fleet: empty profile mix")
	case len(s.Classes) == 0:
		return fmt.Errorf("fleet: empty class mix")
	case s.MetricsEvery < 0:
		return fmt.Errorf("fleet: MetricsEvery = %v", s.MetricsEvery)
	case s.MetricsEvery > 0 && s.MetricsEvery < time.Duration(s.Scale):
		// The per-device cadence is MetricsEvery divided by the capacity
		// scale; anything finer than a nanosecond cannot be scheduled.
		return fmt.Errorf("fleet: MetricsEvery %v too fine for scale %d", s.MetricsEvery, s.Scale)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
	}
	if err := weightsValid("profile", weightsOf(s.Profiles)); err != nil {
		return err
	}
	if err := weightsValid("class", classWeightsOf(s.Classes)); err != nil {
		return err
	}
	for _, pw := range s.Profiles {
		if err := pw.Profile.Validate(); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
	}
	return nil
}

func weightsOf(pws []ProfileWeight) []float64 {
	out := make([]float64, len(pws))
	for i, pw := range pws {
		out[i] = pw.Weight
	}
	return out
}

func classWeightsOf(cws []ClassWeight) []float64 {
	out := make([]float64, len(cws))
	for i, cw := range cws {
		out[i] = cw.Weight
	}
	return out
}

func weightsValid(what string, ws []float64) error {
	var total float64
	for _, w := range ws {
		if w < 0 {
			return fmt.Errorf("fleet: negative %s weight %g", what, w)
		}
		//flashvet:ignore floataccum spec validation sums the config slice in fixed order, before any worker runs
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("fleet: %s weights sum to %g", what, total)
	}
	return nil
}
