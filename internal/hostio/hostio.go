// Package hostio is the host filesystem seam for the long-running
// services. Everything fleetd persists — checkpoint cells, campaign
// specs, event journals — goes through the FS interface instead of raw
// os.* calls, so the exact I/O surface the service depends on is
// enumerable and, more importantly, faultable: FaultFS (fault.go) wraps
// any FS with a seeded, deterministic fault plan in the
// faultinject.ParsePlan grammar style, injecting ENOSPC, EIO on write or
// sync, short (torn) writes, and rename failures at the Nth operation or
// per path class. This mirrors for the host disk what PR 3's
// internal/faultinject does for the simulated NAND: the paper's whole
// claim is that storage fails under sustained writes, and the harness
// that measures it should survive its own storage failing (DESIGN.md
// §13).
//
// The package is deliberately free of policy: it reports injected errors
// through ordinary error returns (wrapping ErrInjectedNoSpace /
// ErrInjectedIO) and leaves retry, degrade, and recovery decisions to
// the callers. It never reads the wall clock and never touches global
// randomness, so it needs no flashvet waivers.
package hostio

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// File is the handle surface the services use. *os.File implements it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the name the file was opened with.
	Name() string
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate changes the size of the file.
	Truncate(size int64) error
	// Seek sets the offset for the next Read or Write.
	Seek(offset int64, whence int) (int64, error)
}

// FS is the host filesystem surface the services use. OS is the
// passthrough; FaultFS wraps any FS with deterministic fault injection.
// Implementations must be safe for concurrent use.
type FS interface {
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// OpenFile is the generalized open (os.OpenFile semantics).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove removes the named file or empty directory.
	Remove(name string) error
	// MkdirAll creates the directory path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir reads the named directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to the named file, creating it if necessary.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// Stat returns the FileInfo for the named file.
	Stat(name string) (fs.FileInfo, error)
}

// OS is the passthrough FS over the real host filesystem.
type OS struct{}

var _ FS = OS{}

func (OS) Create(name string) (File, error) { return os.Create(name) }
func (OS) Open(name string) (File, error)   { return os.Open(name) }
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Path classes scope fault clauses to the artifact kind a path belongs
// to, so a plan can break checkpoint writes while the journal stays
// healthy (or vice versa). Classification is by basename convention —
// the same conventions the fleetd data layout uses.
const (
	ClassCheckpoint = "checkpoint" // *.ckpt and their *.ckpt.tmp staging twins
	ClassJournal    = "journal"    // *.jsonl event journals
	ClassSpec       = "spec"       // campaign.json spec records
	ClassOther      = "other"      // everything else (directories, logs, ...)
	ClassAll        = "all"        // clause scope only: matches every class
)

// Classify maps a path to its fault class.
func Classify(path string) string {
	base := filepath.Base(path)
	switch {
	case strings.HasSuffix(base, ".ckpt"), strings.HasSuffix(base, ".ckpt.tmp"):
		return ClassCheckpoint
	case strings.HasSuffix(base, ".jsonl"):
		return ClassJournal
	case base == "campaign.json":
		return ClassSpec
	default:
		return ClassOther
	}
}
