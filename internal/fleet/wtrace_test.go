package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"flashwear/internal/telemetry"
	"flashwear/internal/wtrace"
)

// TestFleetWearDeterminism pins the fleet ledger contract: with
// Spec.WearTrace on, the merged per-origin ledger (fleetsim -wear-trace)
// is byte-identical across worker counts, every workload class shows up as
// an origin with real wear, and write amplification is visible in the
// totals (phys >= host). The merge is integer-additive by origin name, so
// scheduling must not leak into the CSV.
func TestFleetWearDeterminism(t *testing.T) {
	ctx := context.Background()
	run := func(workers int, reg *telemetry.Registry) (*Result, string) {
		t.Helper()
		spec := testSpec(workers)
		spec.WearTrace = true
		spec.Telemetry = reg
		res, err := Run(ctx, spec)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := res.WriteWearCSV(&buf); err != nil {
			t.Fatalf("WriteWearCSV: %v", err)
		}
		return res, buf.String()
	}

	reg := telemetry.NewRegistry()
	res1, csv1 := run(1, reg)
	_, csv4 := run(4, nil)
	if csv1 != csv4 {
		t.Fatalf("wear CSV differs between 1 and 4 workers:\n--- workers=1\n%s\n--- workers=4\n%s", csv1, csv4)
	}

	if res1.Wear == nil {
		t.Fatal("traced run has nil Wear snapshot")
	}
	rows := map[string]wtrace.Row{}
	for _, r := range res1.Wear.Rows {
		rows[r.Origin] = r
	}
	for _, class := range []string{"benign", "buggy", "attack"} {
		r, ok := rows[class]
		if !ok || r.HostPages == 0 || r.PhysPages == 0 {
			t.Errorf("class %q: missing or empty ledger row: %+v", class, r)
		}
	}
	if rows["os"].PhysPages == 0 {
		t.Error("os origin has no wear; mkfs/format attribution lost")
	}
	tot := res1.Wear.Totals()
	if tot.PhysPages < tot.HostPages {
		t.Errorf("phys pages %d < host pages %d; WA below 1 is impossible", tot.PhysPages, tot.HostPages)
	}
	for _, r := range res1.Wear.Rows {
		if causes := r.HostPrograms + r.GCPrograms + r.WLPrograms + r.CachePrograms; r.PhysPages != causes {
			t.Errorf("origin %q: phys_pages %d != cause sum %d", r.Origin, r.PhysPages, causes)
		}
	}

	// The per-worker progress counters (fleetsim -progress reads these)
	// must account for every device, and brick/read-only tallies must
	// match the deterministic aggregates.
	var done, bricked, readOnly int64
	for _, p := range reg.Snapshot(0).Points {
		switch {
		case strings.HasPrefix(p.Name, "fleet.devices_done"):
			done += p.Int
		case strings.HasPrefix(p.Name, "fleet.bricks"):
			bricked += p.Int
		case strings.HasPrefix(p.Name, "fleet.read_only"):
			readOnly += p.Int
		}
	}
	if done != int64(res1.Total.Devices) {
		t.Errorf("fleet.devices_done sums to %d, want %d", done, res1.Total.Devices)
	}
	if bricked != res1.Total.Bricked {
		t.Errorf("fleet.bricks sums to %d, want %d", bricked, res1.Total.Bricked)
	}
	if readOnly < 0 || readOnly > int64(res1.Total.Devices) {
		t.Errorf("fleet.read_only sums to %d, outside [0, %d]", readOnly, res1.Total.Devices)
	}
}

// TestWriteWearCSVRequiresTracing pins the error path: asking an untraced
// result for its wear ledger must fail loudly, not emit an empty file.
func TestWriteWearCSVRequiresTracing(t *testing.T) {
	var res Result
	if err := res.WriteWearCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteWearCSV on an untraced run succeeded")
	}
}
