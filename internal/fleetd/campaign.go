package fleetd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"flashwear/internal/fleet"
	"flashwear/internal/hostio"
	"flashwear/internal/obs"
	"flashwear/internal/runtrace"
	"flashwear/internal/wtrace"
)

// State is a campaign's lifecycle phase.
type State string

const (
	// StateRunning: the sweep goroutine is advancing epochs.
	StateRunning State = "running"
	// StatePaused: no sweep is active; Resume restarts the idempotent
	// sweep, which reuses every completed cell.
	StatePaused State = "paused"
	// StateDone: the horizon is complete and the final aggregate is set.
	StateDone State = "done"
	// StateFailed: the sweep hit a non-recoverable error (see Err).
	StateFailed State = "failed"
)

// Manager owns the campaigns of one fleetd instance. With a data
// directory it persists every campaign's spec and checkpoint cells there
// and adopts them back (paused) on restart; with an empty data directory
// campaigns are in-memory only — still pausable, but a pause discards
// epoch progress and fork is unavailable.
type Manager struct {
	dataDir   string
	fs        hostio.FS
	ckptRetry obs.Backoff
	metrics   *Metrics
	trace     *runtrace.Tracer

	mu        sync.Mutex
	logger    *obs.Logger
	nextID    int
	campaigns []*Campaign // sorted by ID
}

var campaignIDRe = regexp.MustCompile(`^c(\d{6})$`)

// errRunning rejects operations that need a quiescent campaign.
var errRunning = errors.New("campaign is running; pause it first")

// campaignFile is the on-disk spec record, <dir>/campaign.json.
type campaignFile struct {
	Spec CampaignSpec `json:"spec"`
}

// Options configures a Manager beyond the data directory.
type Options struct {
	// DataDir persists campaign specs and checkpoint cells; empty means
	// in-memory campaigns only.
	DataDir string
	// FS is the host filesystem seam every byte of campaign state goes
	// through — checkpoint cells, campaign specs, event journals. Nil
	// means the real host filesystem; tests and the -host-fault-plan flag
	// install a hostio.FaultFS here.
	FS hostio.FS
	// CheckpointRetry paces checkpoint-write retries before a shard
	// degrades to in-memory carry. The zero value defaults to 3 attempts
	// at the obs.Backoff default delays.
	CheckpointRetry obs.Backoff
}

// NewManager creates a manager over the real host filesystem. A non-empty
// dataDir is created if needed and scanned for existing campaigns, which
// are adopted in StatePaused — restart never silently burns CPU; the
// operator resumes explicitly.
func NewManager(dataDir string) (*Manager, error) {
	return NewManagerOpts(Options{DataDir: dataDir})
}

// NewManagerOpts creates a manager with explicit host-I/O and retry
// policy. Adoption is self-healing: orphaned checkpoint .tmp files (a
// crash mid-write) are swept away, and a campaign directory whose
// campaign.json is missing or garbled is skipped — its ID is still
// retired so a later submit can never collide with its leftovers.
func NewManagerOpts(opts Options) (*Manager, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = hostio.OS{}
	}
	retry := opts.CheckpointRetry
	if retry.Attempts < 1 {
		retry.Attempts = 3
	}
	m := &Manager{dataDir: opts.DataDir, fs: fsys, ckptRetry: retry, metrics: NewMetrics(), nextID: 1}
	// The tracer is always on for phase totals (its observer feeds the
	// fleetd_phase_seconds histograms); span recording is opt-in via
	// /v1/trace/start or the -trace flag.
	m.trace = runtrace.New(0, m.metrics.ObservePhase)
	if m.dataDir == "" {
		return m, nil
	}
	if err := fsys.MkdirAll(m.dataDir, 0o755); err != nil {
		return nil, err
	}
	entries, err := fsys.ReadDir(m.dataDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		match := campaignIDRe.FindStringSubmatch(e.Name())
		if !e.IsDir() || match == nil {
			continue
		}
		// Retire the ID first: even an unadoptable directory must never be
		// reused by a fresh submit.
		if n, err := strconv.Atoi(match[1]); err == nil && n >= m.nextID {
			m.nextID = n + 1
		}
		dir := filepath.Join(m.dataDir, e.Name())
		swept, err := sweepTmpFiles(fsys, dir)
		if err != nil {
			return nil, fmt.Errorf("fleetd: adopting %s: %w", e.Name(), err)
		}
		raw, err := fsys.ReadFile(filepath.Join(dir, "campaign.json"))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // a submit died before persisting its spec
			}
			return nil, fmt.Errorf("fleetd: adopting %s: %w", e.Name(), err)
		}
		var cf campaignFile
		if err := json.Unmarshal(raw, &cf); err != nil {
			continue // garbled spec: leave the directory alone, skip it
		}
		c, err := m.newCampaign(e.Name(), cf.Spec)
		if err != nil {
			return nil, fmt.Errorf("fleetd: adopting %s: %w", e.Name(), err)
		}
		m.campaigns = append(m.campaigns, c)
		if _, err := c.appendEvent(obs.Event{Type: "adopted", Detail: "found in data directory on startup"}); err != nil {
			return nil, err
		}
		if swept > 0 {
			if _, err := c.appendEvent(obs.Event{Type: "tmp_swept",
				Detail: fmt.Sprintf("removed %d orphaned checkpoint .tmp file(s)", swept)}); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(m.campaigns, func(i, j int) bool { return m.campaigns[i].id < m.campaigns[j].id })
	return m, nil
}

// sweepTmpFiles removes orphaned checkpoint temporaries under one
// campaign directory — the residue of a process killed mid-write. The
// writer only ever renames a fully-synced file into place, so every .tmp
// is garbage by construction.
func sweepTmpFiles(fsys hostio.FS, campaignDir string) (int, error) {
	entries, err := fsys.ReadDir(campaignDir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		sub := filepath.Join(campaignDir, e.Name())
		files, err := fsys.ReadDir(sub)
		if err != nil {
			return removed, err
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".tmp") {
				continue
			}
			if err := fsys.Remove(filepath.Join(sub, f.Name())); err != nil {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}

// Metrics exposes the manager's ops-domain registry and instruments.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Trace exposes the manager's execution tracer (DESIGN.md §14): always
// accumulating per-phase totals, recording spans only while a window is
// open.
func (m *Manager) Trace() *runtrace.Tracer { return m.trace }

// Logger returns the installed structured logger (nil means silent).
func (m *Manager) Logger() *obs.Logger {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.logger
}

// SetLogger installs a structured logger for the manager and every
// campaign journal (existing and future). Call before serving traffic.
func (m *Manager) SetLogger(l *obs.Logger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.logger = l
	for _, c := range m.campaigns {
		c.journal.Logger = l
	}
}

// newCampaign builds the in-memory object (no goroutine, StatePaused).
func (m *Manager) newCampaign(id string, spec CampaignSpec) (*Campaign, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fspec, err := spec.fleetSpec()
	if err != nil {
		return nil, err
	}
	c := &Campaign{mgr: m, id: id, spec: spec, fspec: fspec, state: StatePaused}
	if m.dataDir != "" {
		c.dir = filepath.Join(m.dataDir, id)
	}
	c.series = &DaySeries{}
	c.agg = newAggregate()
	journalPath := ""
	if c.dir != "" {
		journalPath = filepath.Join(c.dir, "events.jsonl")
	}
	j, err := obs.OpenJournalFS(m.fs, journalPath)
	if err != nil {
		return nil, err
	}
	j.Logger = m.logger
	j.Tag = id
	c.journal = j
	c.alerts = newAlertState()
	c.alerts.seed(j.Events(0))
	return c, nil
}

// Submit validates a spec, persists it (when a data directory is
// configured), and starts the campaign. The spec is durable before the
// campaign is registered or acknowledged: once Submit returns nil, a kill
// -9 at any later instant leaves a directory the next process adopts — an
// acknowledged submit is never lost. Conversely a failed Submit registers
// nothing, and its directory (with no campaign.json) is skipped on
// adoption, so a client may simply retry.
func (m *Manager) Submit(spec CampaignSpec) (*Campaign, error) {
	m.mu.Lock()
	id := fmt.Sprintf("c%06d", m.nextID)
	c, err := m.newCampaign(id, spec)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.nextID++
	m.mu.Unlock()

	if c.dir != "" {
		if err := m.writeCampaignFile(c.dir, c.spec); err != nil {
			return nil, err
		}
	}
	m.register(c)
	m.metrics.Submits.Inc()
	if _, err := c.appendEvent(obs.Event{Type: "submitted", Detail: c.spec.Name}); err != nil {
		return nil, err
	}
	c.start()
	return c, nil
}

// register adds a fully-persisted campaign to the serving set. Concurrent
// submits may finish persisting out of ID order, so the slice is re-sorted.
func (m *Manager) register(c *Campaign) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.campaigns = append(m.campaigns, c)
	sort.Slice(m.campaigns, func(i, j int) bool { return m.campaigns[i].id < m.campaigns[j].id })
}

func (m *Manager) writeCampaignFile(dir string, spec CampaignSpec) error {
	if err := m.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(campaignFile{Spec: spec}, "", "  ")
	if err != nil {
		return err
	}
	return m.fs.WriteFile(filepath.Join(dir, "campaign.json"), append(raw, '\n'), 0o644)
}

// Get returns a campaign by ID.
func (m *Manager) Get(id string) (*Campaign, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.campaigns {
		if c.id == id {
			return c, true
		}
	}
	return nil, false
}

// List returns the campaigns sorted by ID.
func (m *Manager) List() []*Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Campaign(nil), m.campaigns...)
}

// ForkOptions selects what a fork overrides. Zero values keep the source
// campaign's settings. Only future-facing knobs may change: the forked
// campaign shares the source's completed epochs byte-for-byte, so any
// knob that would invalidate them (seed, population, scale, class mix)
// is not forkable — submit a new campaign instead.
type ForkOptions struct {
	// Name labels the fork.
	Name string `json:"name,omitempty"`
	// Days extends (or shrinks) the horizon; 0 keeps the source horizon.
	Days int `json:"days,omitempty"`
	// Faults, when non-nil, replaces the fault plan for epochs the fork
	// computes itself (completed epochs keep the history they were
	// computed under — that shared past is the point of a fork).
	Faults *string `json:"faults,omitempty"`
}

// Fork clones a paused or finished campaign into a new one: the spec
// (with opts applied) is re-submitted, every completed cell whose epoch
// grid is unchanged is copied over, and the new campaign's sweep resumes
// from there — a counterfactual future on a shared past.
func (m *Manager) Fork(id string, opts ForkOptions) (*Campaign, error) {
	if m.dataDir == "" {
		return nil, errors.New("fleetd: fork requires a data directory")
	}
	src, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("fleetd: fork: no campaign %q", id)
	}
	switch src.State() {
	case StatePaused, StateDone, StateFailed:
	default:
		return nil, fmt.Errorf("fleetd: fork: campaign %s: %w", id, errRunning)
	}
	spec := src.spec
	if opts.Name != "" {
		spec.Name = opts.Name
	}
	if opts.Days != 0 {
		spec.Days = opts.Days
	}
	if opts.Faults != nil {
		spec.Faults = *opts.Faults
	}

	m.mu.Lock()
	newID := fmt.Sprintf("c%06d", m.nextID)
	dst, err := m.newCampaign(newID, spec)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.nextID++
	m.mu.Unlock()

	if err := m.writeCampaignFile(dst.dir, dst.spec); err != nil {
		return nil, err
	}
	if err := copyCells(src, dst); err != nil {
		return nil, err
	}
	m.register(dst)
	m.metrics.Forks.Inc()
	if _, err := dst.appendEvent(obs.Event{Type: "forked", Detail: "from " + src.id}); err != nil {
		return nil, err
	}
	dst.start()
	return dst, nil
}

// copyCells re-stamps every copyable completed cell of src into dst's
// directory. A cell is copyable when its epoch covers the same global day
// range under both horizons (the final, clamped epoch of a differing
// horizon is not) and it is not dst's final epoch (whose footer must
// carry the survivor fold, which only dst's own sweep can produce).
// Device frames re-encode byte-identically, so a copied cell is
// indistinguishable from one dst computed itself.
func copyCells(src, dst *Campaign) error {
	oldDays, newDays := src.spec.Days, dst.spec.Days
	oldE, newE := src.epochLen(), dst.epochLen()
	newEpochs := epochCount(newE, newDays)
	for e := 1; e <= epochCount(oldE, oldDays); e++ {
		oldLo, oldHi := epochDays(e, oldE, oldDays)
		newLo, newHi := epochDays(e, newE, newDays)
		if e > newEpochs || oldLo != newLo || oldHi != newHi {
			continue
		}
		if e == newEpochs && oldDays != newDays {
			continue
		}
		for s := 0; s < src.spec.Shards; s++ {
			if err := restampCell(src, dst, s, e, e == newEpochs); err != nil {
				if errors.Is(err, fs.ErrNotExist) || errors.Is(err, ErrCheckpointTruncated) {
					continue // cell not completed; dst's sweep recomputes it
				}
				return err
			}
		}
	}
	return nil
}

// restampCell copies one (shard, epoch) cell from src to dst, rewriting
// the identity header for dst's horizon.
func restampCell(src, dst *Campaign, shard, epoch int, final bool) error {
	r, err := openCell(src.mgr.fs, cellPath(src.dir, shard, epoch))
	if err != nil {
		return err
	}
	defer r.Close()
	hdr := r.Header
	hdr.Days = dst.spec.Days
	w, err := newCkptWriter(dst.mgr.fs, cellPath(dst.dir, shard, epoch), hdr)
	if err != nil {
		return err
	}
	ft, err := r.scan(w.writeDevice)
	if err != nil {
		w.abort()
		return err
	}
	if !final {
		ft.Final = nil
	}
	return w.finish(ft)
}

// Campaign is one managed fleet run. All public methods are safe for
// concurrent use.
type Campaign struct {
	mgr   *Manager
	id    string
	dir   string // "" for in-memory campaigns
	spec  CampaignSpec
	fspec fleet.Spec

	// journal and alerts are owned by the campaign for its whole life;
	// journal is internally synchronized, alerts is touched only by the
	// single sweep goroutine (plus seeding before any sweep starts).
	journal *obs.Journal
	alerts  *alertState

	// drain asks the sweep to stop at the next cell boundary (graceful
	// shutdown); cleared when a sweep starts.
	drain atomic.Bool

	mu      sync.Mutex
	state   State
	err     error
	cancel  context.CancelFunc
	runDone chan struct{}
	// ckptPaused marks degraded mode: at least one shard's checkpoint
	// write has exhausted its retry budget and that shard's states are
	// carried in memory. The campaign keeps simulating; checkpointing
	// resumes automatically once writes succeed again.
	ckptPaused bool

	// Committed progress: the fleet-level series over completed epochs,
	// the cumulative dead-device aggregate, the point-in-time ledger, and
	// the final aggregate once done. len(series.Rows) is days completed.
	series *DaySeries
	agg    *Aggregate
	ledger wtrace.Snapshot
	final  *Aggregate
}

// ID returns the campaign's identifier.
func (c *Campaign) ID() string { return c.id }

// Spec returns the submitted (defaulted) spec.
func (c *Campaign) Spec() CampaignSpec { return c.spec }

// epochLen is the effective epoch length in days: CheckpointEvery when a
// data directory backs the campaign, otherwise one epoch spans the whole
// horizon (there is nowhere to store intermediate states).
func (c *Campaign) epochLen() int {
	if c.dir == "" || c.spec.CheckpointEvery <= 0 || c.spec.CheckpointEvery >= c.spec.Days {
		return c.spec.Days
	}
	return c.spec.CheckpointEvery
}

// start launches the sweep goroutine.
func (c *Campaign) start() {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	c.drain.Store(false)
	c.mu.Lock()
	c.state = StateRunning
	c.err = nil
	c.cancel = cancel
	c.runDone = done
	c.mu.Unlock()
	go func() {
		defer close(done)
		err := c.sweep(ctx)
		c.mu.Lock()
		switch {
		case err == nil:
			c.state = StateDone
		case errors.Is(err, context.Canceled):
			c.state = StatePaused
		default:
			c.state = StateFailed
			c.err = err
		}
		st := c.state
		c.mu.Unlock()
		switch st {
		case StateDone:
			c.appendEvent(obs.Event{Type: "done"})
		case StatePaused:
			c.appendEvent(obs.Event{Type: "paused"})
		case StateFailed:
			c.appendEvent(obs.Event{Type: "failed", Detail: err.Error()})
		}
	}()
}

// appendEvent journals e for this campaign. Journal failures on the ops
// plane are real durability failures (the journal shares the campaign's
// data directory), so callers in the sweep path propagate them.
func (c *Campaign) appendEvent(e obs.Event) (obs.Event, error) {
	// Journal appends fsync; bill them to the journal phase. The journal
	// is campaign-level work, so the span renders on the campaign track
	// regardless of which cell produced the event.
	sp := c.mgr.trace.Begin(runtrace.PhaseJournal, -1, e.Epoch, -1)
	defer sp.End()
	return c.journal.Append(e)
}

// Events returns the journaled events with Seq > since.
func (c *Campaign) Events(since uint64) []obs.Event {
	return c.journal.Events(since)
}

// Journal exposes the campaign's event journal (for subscriptions).
func (c *Campaign) Journal() *obs.Journal { return c.journal }

// Pause cancels the sweep and waits for it to stop. The sweep checks for
// cancellation between device-epochs, so an in-flight cell is abandoned
// (its .tmp file discarded) and recomputed on resume. Pausing a finished
// campaign is a no-op.
func (c *Campaign) Pause() {
	c.mu.Lock()
	cancel, done := c.cancel, c.runDone
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done
	}
}

// Drain asks a running sweep to stop at the next cell boundary without
// waiting — the graceful-shutdown half of Pause. The sweep exits as
// paused (every completed cell is already durable, so nothing is lost);
// use Wait to block until it has. Draining a quiescent campaign is a
// no-op.
func (c *Campaign) Drain() {
	c.drain.Store(true)
}

// Resume restarts a paused campaign's sweep. Completed cells are reused,
// so resuming costs only the probe pass plus whatever is genuinely left.
func (c *Campaign) Resume() error {
	c.mu.Lock()
	st := c.state
	c.mu.Unlock()
	switch st {
	case StatePaused:
		c.mgr.metrics.Resumes.Inc()
		if _, err := c.appendEvent(obs.Event{Type: "resumed"}); err != nil {
			return err
		}
		c.start()
		return nil
	case StateRunning:
		return nil
	default:
		return fmt.Errorf("fleetd: campaign %s is %s, not paused", c.id, st)
	}
}

// Wait blocks until the current sweep (if any) exits and returns the
// campaign's error state.
func (c *Campaign) Wait() error {
	c.mu.Lock()
	done := c.runDone
	c.mu.Unlock()
	if done != nil {
		<-done
	}
	return c.Err()
}

// State returns the lifecycle phase.
func (c *Campaign) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Err returns the failure cause when State is StateFailed.
func (c *Campaign) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Status is a point-in-time progress summary.
type Status struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	State    State  `json:"state"`
	Error    string `json:"error,omitempty"`
	Devices  int    `json:"devices"`
	Days     int    `json:"days"`
	DaysDone int    `json:"days_done"`
	Shards   int    `json:"shards"`
	Bricked  int64  `json:"bricked"`
	ReadOnly int64  `json:"read_only"`
	// CheckpointPaused reports degraded mode: the campaign is simulating
	// but at least one shard cannot persist checkpoints (full or failing
	// disk) and is carrying its states in memory instead.
	CheckpointPaused bool `json:"checkpoint_paused,omitempty"`
	// LastSeq is the campaign journal's highest event sequence number,
	// the cursor a client passes as ?since= to tail new events.
	LastSeq uint64 `json:"last_seq"`
}

// Status returns the progress summary.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:      c.id,
		Name:    c.spec.Name,
		State:   c.state,
		Devices: c.spec.Devices,
		Days:    c.spec.Days,
		Shards:  c.spec.Shards,
	}
	if c.err != nil {
		st.Error = c.err.Error()
	}
	st.CheckpointPaused = c.ckptPaused
	st.DaysDone = len(c.series.Rows)
	if n := len(c.series.Rows); n > 0 {
		st.Bricked = c.series.Rows[n-1][dBricked]
		st.ReadOnly = c.series.Rows[n-1][dReadOnly]
	}
	st.LastSeq = c.journal.LastSeq()
	return st
}

// Series returns a deep copy of the committed day series.
func (c *Campaign) Series() *DaySeries {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.series.clone()
}

// Aggregate returns the campaign's terminal aggregate and whether it is
// final. Before completion it covers only devices that already died.
func (c *Campaign) Aggregate() (*Aggregate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.final != nil {
		return c.final.clone(), true
	}
	return c.agg.clone(), false
}

// Ledger returns the committed point-in-time fleet wear ledger (dead
// plus live devices, full-scale volumes).
func (c *Campaign) Ledger() wtrace.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s wtrace.Snapshot
	s.Merge(c.ledger)
	return s
}

// sweep is the idempotent run loop: for each epoch, for each shard,
// reuse the cell if its checkpoint is valid, otherwise recompute it from
// the previous epoch's states; then commit the epoch fleet-wide. Fresh
// starts, crash recovery, resume, and fork all take this exact path.
//
// Checkpoint host-I/O failures never stop the sweep: a cell whose write
// keeps failing after the retry budget is computed anyway with its
// end-of-epoch device states carried in memory (degraded,
// "checkpointing-paused" mode), and every subsequent epoch tries to
// persist again, so the campaign heals itself the moment the disk does.
// The memory carry lives only within one sweep — after a crash or pause
// the resumed sweep recomputes the unpersisted epochs from the last
// durable cells, which yields byte-identical results by the determinism
// contract.
func (c *Campaign) sweep(ctx context.Context) error {
	days := c.spec.Days
	every := c.epochLen()
	shards := c.spec.Shards
	epochs := epochCount(every, days)

	c.mu.Lock()
	c.series = &DaySeries{}
	c.agg = newAggregate()
	c.ledger = wtrace.Snapshot{}
	c.final = nil
	c.ckptPaused = false
	c.mu.Unlock()
	c.mgr.metrics.CheckpointDegraded.Set(0)

	var prev []*epochFooter
	// prevMem holds, per shard, the device states at the end of epoch e-1
	// for shards whose cell write failed there; curMem collects the same
	// for the epoch in flight.
	var prevMem map[int][]*deviceState
	for e := 1; e <= epochs; e++ {
		cur := make([]*epochFooter, shards)
		curMem := make(map[int][]*deviceState)
		for s := 0; s < shards; s++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if c.drain.Load() {
				return context.Canceled
			}
			var prevFt *epochFooter
			if prev != nil {
				prevFt = prev[s]
			}
			if c.dir != "" {
				lo, hi := epochDays(e, every, days)
				want := fileHeader{
					Seed: c.fspec.Seed, Devices: c.fspec.Devices, Days: days,
					Shard: s, Epoch: e, DayLo: lo, DayHi: hi,
				}
				ft, err := loadFooter(c.mgr.fs, cellPath(c.dir, s, e), want)
				ok, err := cellUsable(ft, err)
				if err != nil {
					return err
				}
				// The final epoch's footer must carry the survivor fold; a
				// restamped cell from a shorter fork source does not.
				if ok && e == epochs && ft.Final == nil {
					ok = false
				}
				if ok {
					c.mgr.metrics.CellsReused.Inc()
					if _, err := c.appendEvent(obs.Event{Type: "cell_reused", Shard: s, Epoch: e}); err != nil {
						return err
					}
					cur[s] = ft
					continue
				}
			}
			ft, err := c.durableShardEpoch(ctx, s, e, prevFt, prevMem[s], curMem)
			if err != nil {
				return err
			}
			c.mgr.metrics.CellsComputed.Inc()
			if _, err := c.appendEvent(obs.Event{Type: "cell_computed", Shard: s, Epoch: e}); err != nil {
				return err
			}
			cur[s] = ft
		}
		if err := c.commitEpoch(cur, e == epochs); err != nil {
			return err
		}
		if len(curMem) == 0 && c.checkpointPaused() {
			c.setCheckpointPaused(false)
			if _, err := c.appendEvent(obs.Event{Type: "checkpoint_resumed", Epoch: e,
				Detail: "checkpoint writes succeeding again; durable state is catching up"}); err != nil {
				return err
			}
		}
		prev = cur
		prevMem = curMem
	}
	return nil
}

func (c *Campaign) checkpointPaused() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ckptPaused
}

func (c *Campaign) setCheckpointPaused(v bool) {
	c.mu.Lock()
	c.ckptPaused = v
	c.mu.Unlock()
	if v {
		c.mgr.metrics.CheckpointDegraded.Set(1)
	} else {
		c.mgr.metrics.CheckpointDegraded.Set(0)
	}
}

// durableShardEpoch computes cell (shard, epoch) and makes it durable if
// it possibly can: host-I/O failures on the checkpoint write path retry
// with capped, jittered backoff (each attempt recomputes the cell — a
// failed attempt has no complete accumulator to salvage), and when the
// budget is exhausted the cell is computed one final time with no writer
// at all, its end states parked in mem for the next epoch's producer.
// Simulation errors, corruption, and cancellation are never retried.
func (c *Campaign) durableShardEpoch(ctx context.Context, shard, epoch int, prevFt *epochFooter, prevStates []*deviceState, mem map[int][]*deviceState) (*epochFooter, error) {
	persist := c.dir != ""
	var ft *epochFooter
	if persist {
		err := c.mgr.ckptRetry.Retry(func(attempt int) (bool, error) {
			var err error
			ft, _, err = c.runShardEpoch(ctx, shard, epoch, prevFt, prevStates, true, false)
			if err != nil && errors.Is(err, errCheckpointIO) && ctx.Err() == nil {
				c.mgr.metrics.CheckpointRetries.Inc()
				return true, err
			}
			return false, err
		})
		if err == nil {
			return ft, nil
		}
		if !errors.Is(err, errCheckpointIO) || ctx.Err() != nil {
			return nil, err
		}
		// Retry budget exhausted: degrade. Compute the cell in memory and
		// alert once per outage, not once per cell.
		if !c.checkpointPaused() {
			c.setCheckpointPaused(true)
			if _, aerr := c.appendEvent(obs.Event{Type: "checkpoint_paused", Shard: shard, Epoch: epoch,
				Detail: "checkpoint writes failing after retries; campaign continues in memory: " + err.Error()}); aerr != nil {
				return nil, aerr
			}
		}
	}
	ft, states, err := c.runShardEpoch(ctx, shard, epoch, prevFt, prevStates, false, persist)
	if err != nil {
		return nil, err
	}
	if persist {
		mem[shard] = states
	}
	return ft, nil
}

// loadFooter's identity header for cell (s, e) needs the day range; the
// sweep computes it inline above. runShardEpoch computes one cell: it
// streams the shard's device states from prevStates (a degraded prior
// epoch's in-memory carry), or the previous epoch's checkpoint, or births
// the population for epoch 1, through a worker pool into the cell's
// accumulator and — when persist is set — its checkpoint file. With
// capture set, every surviving device's end-of-epoch state is collected
// and returned so a degraded epoch can seed the next one from memory;
// runDeviceEpoch never mutates its input state, so a retry may feed the
// same prevStates again.
func (c *Campaign) runShardEpoch(ctx context.Context, shard, epoch int, prevFt *epochFooter, prevStates []*deviceState, persist, capture bool) (*epochFooter, []*deviceState, error) {
	spec := c.fspec
	days := c.spec.Days
	lo, hi := epochDays(epoch, c.epochLen(), days)
	devLo, devHi := shardRange(spec.Devices, c.spec.Shards, shard)
	acc := newEpochAcc(days, lo, hi, prevFt)

	var w *ckptWriter
	if persist {
		hdr := fileHeader{
			Seed: spec.Seed, Devices: spec.Devices, Days: days,
			Shard: shard, Epoch: epoch,
			DevLo: devLo, DevHi: devHi, DayLo: lo, DayHi: hi,
		}
		var err error
		w, err = newCkptWriter(c.mgr.fs, cellPath(c.dir, shard, epoch), hdr)
		if err != nil {
			return nil, nil, err
		}
		w.metrics = c.mgr.metrics
		w.trace = c.mgr.trace
		w.shard, w.epoch = shard, epoch
	}

	type job struct {
		idx int
		st  *deviceState
	}
	workers := spec.Workers
	jobs := make(chan job, workers)
	var prodErr error
	go func() {
		defer close(jobs)
		switch {
		case prevStates != nil:
			for _, st := range prevStates {
				select {
				case jobs <- job{idx: st.Index, st: st}:
				case <-ctx.Done():
					return
				}
			}
			return
		case epoch == 1:
			for i := devLo; i < devHi; i++ {
				select {
				case jobs <- job{idx: i}:
				case <-ctx.Done():
					return
				}
			}
			return
		}
		r, err := openCell(c.mgr.fs, cellPath(c.dir, shard, epoch-1))
		if err != nil {
			prodErr = err
			return
		}
		defer r.Close()
		_, err = r.scan(func(st *deviceState) error {
			select {
			case jobs <- job{idx: st.Index, st: st}:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		if err != nil && !errors.Is(err, context.Canceled) {
			prodErr = err
		}
	}()

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var workErr error
	var captured []*deviceState
	tr := c.mgr.trace
	shardLabel := strconv.Itoa(shard)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		// Workers run under pprof labels so CPU profiles segment by the
		// same dimensions as the runtrace spans (DESIGN.md §14).
		go runtrace.Do(ctx, func(ctx context.Context) {
			defer wg.Done()
			for jb := range jobs {
				if ctx.Err() != nil {
					continue // drain
				}
				errMu.Lock()
				failed := workErr != nil
				errMu.Unlock()
				if failed {
					continue
				}
				sp := tr.Begin(runtrace.PhaseSimulate, shard, epoch, jb.idx)
				st, err := runDeviceEpoch(spec, spec.Sample(jb.idx), jb.st, acc)
				sp.End()
				if err == nil && st != nil && w != nil {
					runtrace.Do(ctx, func(context.Context) {
						sp := tr.Begin(runtrace.PhaseCheckpointEncode, shard, epoch, jb.idx)
						err = w.writeDevice(st)
						sp.End()
					}, "phase", runtrace.PhaseCheckpointEncode.String())
				}
				if err == nil && st != nil && capture {
					errMu.Lock()
					captured = append(captured, st)
					errMu.Unlock()
				}
				if err != nil {
					errMu.Lock()
					if workErr == nil {
						workErr = err
					}
					errMu.Unlock()
				}
			}
		}, "shard", shardLabel, "phase", runtrace.PhaseSimulate.String())
	}
	wg.Wait()

	err := workErr
	if err == nil {
		err = prodErr
	}
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		if w != nil {
			w.abort()
		}
		return nil, nil, err
	}
	ft, err := acc.footer(shard, epoch)
	if err != nil {
		if w != nil {
			w.abort()
		}
		return nil, nil, err
	}
	if w != nil {
		if err := w.finish(ft); err != nil {
			return nil, nil, err
		}
		if _, err := c.appendEvent(obs.Event{Type: "checkpoint_written", Shard: shard, Epoch: epoch,
			Detail: fmt.Sprintf("bytes=%d", w.bytes)}); err != nil {
			return nil, nil, err
		}
	}
	return ft, captured, nil
}

// commitEpoch merges the epoch's shard footers and publishes them: the
// epoch's day rows append to the campaign series, and the cumulative
// aggregate, ledger, and (on the last epoch) final aggregate are
// replaced. Shards merge in index order, but every merge is commutative
// anyway — the committed values are a pure function of the cell set.
func (c *Campaign) commitEpoch(footers []*epochFooter, final bool) error {
	epoch := 0
	if len(footers) > 0 {
		epoch = footers[0].Epoch
	}
	aggSp := c.mgr.trace.Begin(runtrace.PhaseAggregate, -1, epoch, -1)
	es := &DaySeries{}
	agg := newAggregate()
	var ledger wtrace.Snapshot
	var fin *Aggregate
	if final {
		fin = newAggregate()
	}
	for _, ft := range footers {
		fs := &DaySeries{Rows: ft.Rows, Wear: ft.Wear}
		if len(es.Rows) == 0 {
			es = fs.clone()
		} else if err := es.merge(fs); err != nil {
			return err
		}
		if err := agg.merge(ft.Agg); err != nil {
			return err
		}
		ledger.Merge(ft.Ledger)
		if final {
			if ft.Final == nil {
				return fmt.Errorf("fleetd: shard %d epoch %d: final epoch footer has no final aggregate", ft.Shard, ft.Epoch)
			}
			if err := fin.merge(ft.Final); err != nil {
				return err
			}
		}
	}
	c.mu.Lock()
	c.series.append(es)
	c.agg = agg
	c.ledger = ledger
	c.final = fin
	rows := c.series.Rows
	daysDone := len(rows)
	var bricked, readOnly int64
	if daysDone > 0 {
		bricked = rows[daysDone-1][dBricked]
		readOnly = rows[daysDone-1][dReadOnly]
	}
	c.mu.Unlock()

	// Ops-plane accounting and sim-domain alerting. The alert scan reads
	// only the committed day rows (sim domain); its findings journal as
	// Sim events and dedupe across resumes via the fired-set. rows is only
	// ever appended to and the single sweep goroutine is the only writer
	// here, so reading it outside c.mu is safe.
	devices := int64(c.spec.Devices)
	dd := int64(len(es.Rows)) * devices
	c.mgr.metrics.DeviceDays.Add(dd)
	c.mgr.metrics.DeviceRate.Add(dd)
	aggSp.End()
	alertSp := c.mgr.trace.Begin(runtrace.PhaseAlertEval, -1, epoch, -1)
	alerts := c.alerts.scan(rows, devices)
	alertSp.End()
	for _, a := range alerts {
		if _, err := c.appendEvent(a.event()); err != nil {
			return err
		}
	}
	_, err := c.appendEvent(obs.Event{Type: "epoch_committed", Day: daysDone,
		Detail: fmt.Sprintf("bricked=%d read_only=%d", bricked, readOnly)})
	return err
}
