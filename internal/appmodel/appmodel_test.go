package appmodel

import (
	"testing"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/device"
	"flashwear/internal/simclock"
)

// testPhone boots a phone with per-app sandboxes for the models.
func testPhone(t *testing.T) (*android.Phone, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	prof := device.ProfileMotoE8().Scaled(512)
	phone, err := android.NewPhone(android.Config{Profile: prof, FS: android.FSExt4}, clock)
	if err != nil {
		t.Fatal(err)
	}
	return phone, clock
}

func install(t *testing.T, phone *android.Phone, name string) *android.App {
	t.Helper()
	app, err := phone.InstallApp(name)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestCameraBurstsThenIdles(t *testing.T) {
	phone, clock := testPhone(t)
	app := install(t, phone, "camera")
	cam := NewCamera(app.Storage(), clock, 1)
	cam.BurstBytes = 2 << 20
	cam.PhotoBytes = 512 << 10
	cam.Every = 6 * time.Hour
	if err := cam.Step(13 * time.Hour); err != nil {
		t.Fatal(err)
	}
	stats := phone.AppIOStats("camera")
	// ~3 sessions in 13h at one per 6h (sessions bound the idle).
	want := int64(3 * 2 << 20)
	if stats.BytesWritten < want || stats.BytesWritten > want*2 {
		t.Fatalf("camera wrote %d, want ~%d", stats.BytesWritten, want)
	}
	if cam.Name() != "camera" {
		t.Fatal("name")
	}
}

func TestChatIsTinyButPersistent(t *testing.T) {
	phone, clock := testPhone(t)
	app := install(t, phone, "chat")
	chat := NewChat(app.Storage(), clock, 2)
	if err := chat.Step(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	stats := phone.AppIOStats("chat")
	// ~120 messages x 2 KiB plus occasional 64 KiB compactions.
	if stats.BytesWritten < 200<<10 || stats.BytesWritten > 4<<20 {
		t.Fatalf("chat wrote %d, want a few hundred KiB", stats.BytesWritten)
	}
	if stats.SyncOps < 100 {
		t.Fatalf("chat synced %d times, want ~120", stats.SyncOps)
	}
}

func TestUpdaterMonthlyAndAtomic(t *testing.T) {
	phone, clock := testPhone(t)
	app := install(t, phone, "updater")
	up := NewUpdater(app.Storage(), clock, 3)
	up.UpdateBytes = 4 << 20
	if err := up.Step(31 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Storage().Stat("/update.pkg"); err != nil {
		t.Fatalf("update package missing: %v", err)
	}
	if _, err := app.Storage().Stat("/update.pkg.tmp"); err == nil {
		t.Fatal("temp file left behind after rename")
	}
	stats := phone.AppIOStats("updater")
	if stats.BytesWritten < 4<<20 {
		t.Fatalf("updater wrote %d", stats.BytesWritten)
	}
}

func TestSpotifyBugWritesLikeAnAttack(t *testing.T) {
	phone, clock := testPhone(t)
	app := install(t, phone, "spotify")
	bug := NewSpotifyBug(app.Storage(), clock, 4)
	bug.CacheBytes = 4 << 20
	if err := bug.Step(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	stats := phone.AppIOStats("spotify")
	// Continuous rewriting: far more volume than any benign app produces
	// in ten minutes.
	if stats.BytesWritten < 64<<20 {
		t.Fatalf("spotify bug wrote only %d bytes in 10 minutes", stats.BytesWritten)
	}
}

func TestModelsCoexistOnOnePhone(t *testing.T) {
	phone, clock := testPhone(t)
	cam := NewCamera(install(t, phone, "camera").Storage(), clock, 6)
	cam.BurstBytes = 2 << 20 // fit the scaled 16 MiB device
	cam.PhotoBytes = 512 << 10
	models := []Model{
		NewChat(install(t, phone, "chat").Storage(), clock, 5),
		cam,
	}
	for _, m := range models {
		if err := m.Step(time.Hour); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
	if phone.AppIOStats("chat").BytesWritten == 0 || phone.AppIOStats("camera").BytesWritten == 0 {
		t.Fatal("a model produced no I/O")
	}
}
