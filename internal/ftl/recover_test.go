package ftl

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flashwear/internal/faultinject"
	"flashwear/internal/nand"
)

// faultyFTL builds an FTL whose chips share one fault injector, mirroring
// how device.New wires a per-device injector across the whole package.
func faultyFTL(t *testing.T, plan faultinject.Plan, hybrid bool) (*FTL, *faultinject.Injector) {
	t.Helper()
	inj := faultinject.New(plan, nil)
	cfg := Config{MainChip: testChipCfg(100_000)}
	cfg.MainChip.Seed = plan.Seed + 3
	cfg.MainChip.Inject = inj
	if hybrid {
		cfg.Hybrid = &HybridConfig{
			CacheChip: nand.Config{
				Geometry: nand.Geometry{
					Dies: 1, PlanesPerDie: 1, BlocksPerPlane: 4,
					PagesPerBlock: 16, PageSize: 4096,
				},
				Cell: nand.SLC, RatedPE: 100_000, Seed: plan.Seed + 4,
				Inject: inj,
			},
			DrainRatio:       0.25,
			MergeUtilisation: 0.8,
		}
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, inj
}

// testCleanCutRecover is the deterministic half of the power-loss contract:
// after any amount of GC/wear-leveling/drain activity, cutting power and
// recovering reproduces every acknowledged write exactly, and the device
// keeps working afterwards.
func testCleanCutRecover(t *testing.T, hybrid bool) {
	f, _ := faultyFTL(t, faultinject.Plan{Seed: 7}, hybrid)
	n := f.LogicalPages()
	written := make(map[int]byte)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3*n; i++ { // heavy overwrite: GC and drains must run
		lp := rng.Intn(n)
		v := byte(rng.Intn(255) + 1)
		req := 4096
		if hybrid && rng.Intn(3) == 0 {
			req = 1 << 20 // sometimes bypass the cache
		}
		if _, err := f.WritePage(lp, page(v, 4096), req); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		written[lp] = v
	}
	if _, err := f.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	f.CutPower()
	// Every host operation is refused while the device sits unpowered.
	if _, err := f.Flush(); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("Flush while down: %v, want ErrPowerLoss", err)
	}
	if _, _, err := f.ReadPage(0); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("ReadPage while down: %v, want ErrPowerLoss", err)
	}
	if _, err := f.WritePage(0, page(1, 4096), 4096); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("WritePage while down: %v, want ErrPowerLoss", err)
	}
	if _, err := f.TrimPage(0); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("TrimPage while down: %v, want ErrPowerLoss", err)
	}
	if !f.PowerLost() {
		t.Fatal("PowerLost() false after CutPower")
	}

	if _, err := f.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if f.Stats().Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", f.Stats().Recoveries)
	}
	for lp, v := range written {
		data, _, err := f.ReadPage(lp)
		if err != nil {
			t.Fatalf("read lp %d after recovery: %v", lp, err)
		}
		if data == nil || data[0] != v || data[4095] != v {
			t.Fatalf("lp %d: acknowledged value %#x lost after recovery", lp, v)
		}
	}
	// The recovered device keeps accepting work.
	if _, err := f.WritePage(1, page(0xEE, 4096), 4096); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	data, _, err := f.ReadPage(1)
	if err != nil || data == nil || data[0] != 0xEE {
		t.Fatalf("read-back after recovery: %v %v", data, err)
	}
}

func TestRecoverCleanCut(t *testing.T)       { testCleanCutRecover(t, false) }
func TestRecoverCleanCutHybrid(t *testing.T) { testCleanCutRecover(t, true) }

// TestRecoverTrimResurrection pins the documented trim semantics: a trim is
// volatile, so if the stale flash copy has not yet been erased, a power cut
// deterministically resurrects the page with its old content.
func TestRecoverTrimResurrection(t *testing.T) {
	f := newTestFTL(t, nil)
	if _, err := f.WritePage(5, page(0xAB, 4096), 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := f.TrimPage(5); err != nil {
		t.Fatal(err)
	}
	if data, _, err := f.ReadPage(5); err != nil || data != nil {
		t.Fatalf("trimmed page read %v, %v; want nil, nil", data, err)
	}
	f.CutPower()
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	data, _, err := f.ReadPage(5)
	if err != nil {
		t.Fatal(err)
	}
	if data == nil || data[0] != 0xAB {
		t.Fatalf("stale flash copy did not resurrect: %v", data)
	}
}

// runCrashWorkload drives one randomized crash/remount round: a mixed
// write/trim/read workload against an injector that cuts power on an op
// schedule and sprinkles transient read faults plus program faults. The
// invariant under test is the tentpole's acceptance bar — every
// acknowledged write survives every cut, and injected program/erase
// failures never surface as data loss. Trimmed pages are the one
// deliberate exception: trims are volatile, so after a cut they may
// resurrect, but only ever with a value that page actually held.
func runCrashWorkload(t *testing.T, seed int64, hybrid bool) (faultinject.Stats, Stats) {
	plan := faultinject.Plan{
		Seed:             seed,
		ReadFaultProb:    5e-4,
		ProgramFaultProb: 2e-4,
		EraseFaultProb:   5e-5,
		PowerCutEvery:    1499,
	}
	f, inj := faultyFTL(t, plan, hybrid)
	n := f.LogicalPages()
	model := make([]byte, n)            // acknowledged value per lp; 0 = unmapped
	history := make([]map[byte]bool, n) // every value each lp ever held
	rng := rand.New(rand.NewSource(seed))
	cuts := 0

	// audit sweeps the whole logical space against the model, resyncing
	// trimmed pages that resurrected. The sweep's own reads count against
	// the injector's op schedule, so it must survive further cuts itself.
	audit := func() {
		for lp := 0; lp < n; lp++ {
			var data []byte
			for {
				d, _, err := f.ReadPage(lp)
				if errors.Is(err, ErrPowerLoss) {
					inj.PowerRestored()
					if _, err := f.Recover(); err != nil {
						t.Fatalf("seed %d: recover during audit: %v", seed, err)
					}
					cuts++
					continue
				}
				if err != nil {
					t.Fatalf("seed %d: audit read lp %d: %v", seed, lp, err)
				}
				data = d
				break
			}
			if model[lp] != 0 {
				if data == nil || data[0] != model[lp] || data[len(data)-1] != model[lp] {
					t.Fatalf("seed %d: lp %d lost acknowledged value %#x after cut (got %v)",
						seed, lp, model[lp], data)
				}
				continue
			}
			if data == nil {
				continue // never written, or trim held
			}
			// A trimmed page resurrected. It must be internally consistent
			// and hold a value this page was actually once written with.
			if data[0] != data[len(data)-1] || history[lp] == nil || !history[lp][data[0]] {
				t.Fatalf("seed %d: lp %d resurrected with never-written content %#x",
					seed, lp, data[0])
			}
			model[lp] = data[0] // the resurrected copy is live again
		}
	}
	recoverNow := func() {
		inj.PowerRestored()
		if _, err := f.Recover(); err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}
		cuts++
		audit()
	}

	buf := make([]byte, f.PageSize())
	eol := false
	for op := 0; op < 5000 && !eol; op++ {
		lp := rng.Intn(n)
		switch r := rng.Intn(10); {
		case r == 0: // trim
			_, err := f.TrimPage(lp)
			switch {
			case err == nil:
				model[lp] = 0
			case errors.Is(err, ErrPowerLoss):
				recoverNow()
			case errors.Is(err, ErrReadOnly):
				eol = true
			default:
				t.Fatalf("seed %d: trim: %v", seed, err)
			}
		case r <= 2: // read and check
			data, _, err := f.ReadPage(lp)
			switch {
			case errors.Is(err, ErrPowerLoss):
				recoverNow()
			case err != nil:
				t.Fatalf("seed %d: read: %v", seed, err)
			case model[lp] != 0 && (data == nil || data[0] != model[lp]):
				t.Fatalf("seed %d: lp %d reads %v, want %#x", seed, lp, data, model[lp])
			case model[lp] == 0 && data != nil:
				t.Fatalf("seed %d: trimmed lp %d readable while powered", seed, lp)
			}
		default: // write
			v := byte(rng.Intn(255) + 1)
			for i := range buf {
				buf[i] = v
			}
			req := len(buf)
			if hybrid && rng.Intn(4) == 0 {
				req = 1 << 20
			}
			_, err := f.WritePage(lp, buf, req)
			switch {
			case err == nil:
				model[lp] = v
				if history[lp] == nil {
					history[lp] = make(map[byte]bool)
				}
				history[lp][v] = true
			case errors.Is(err, ErrPowerLoss):
				recoverNow()
			case errors.Is(err, ErrReadOnly) || errors.Is(err, ErrBricked):
				eol = true
			default:
				t.Fatalf("seed %d: write: %v", seed, err)
			}
		}
	}
	audit() // final sweep, whatever state the run ended in
	if cuts == 0 {
		t.Fatalf("seed %d: no power cut fired; tighten PowerCutEvery", seed)
	}
	if got := f.Stats().Recoveries; got != int64(cuts) {
		t.Errorf("seed %d: Recoveries = %d, recovered %d times", seed, got, cuts)
	}
	return inj.Stats(), f.Stats()
}

// TestRecoverRandomizedPowerCuts is the fstest-style randomized suite over
// ≥6 seeds × {single-pool, hybrid}: repeated injected cuts at arbitrary
// points (mid-GC, mid-drain, mid-erase), each followed by recovery and a
// full audit of every acknowledged write.
func TestRecoverRandomizedPowerCuts(t *testing.T) {
	var inj faultinject.Stats
	var fs Stats
	for seed := int64(1); seed <= 6; seed++ {
		for _, hybrid := range []bool{false, true} {
			t.Run(fmt.Sprintf("seed=%d,hybrid=%v", seed, hybrid), func(t *testing.T) {
				is, s := runCrashWorkload(t, seed, hybrid)
				inj.ReadFaults += is.ReadFaults
				inj.ProgramFaults += is.ProgramFaults
				inj.PowerCuts += is.PowerCuts
				fs.ReadRetries += s.ReadRetries
				fs.ProgramRetries += s.ProgramRetries
			})
		}
	}
	// Across 12 runs the probabilistic faults must actually have fired and
	// been absorbed by the retry paths (per-run counts may be zero).
	if inj.PowerCuts == 0 || inj.ReadFaults == 0 || inj.ProgramFaults == 0 {
		t.Errorf("fault mix too thin to be meaningful: %+v", inj)
	}
	if fs.ReadRetries == 0 {
		t.Error("injected read faults never exercised firmware read-retry")
	}
	if fs.ProgramRetries == 0 {
		t.Error("injected program faults never exercised the re-program path")
	}
}

// TestProgramFailuresNeverLoseData injects a heavy program-failure rate and
// demands that the FTL's retry-on-fresh-page path absorbs every failure:
// all writes are acknowledged and all acknowledged data reads back.
func TestProgramFailuresNeverLoseData(t *testing.T) {
	for _, hybrid := range []bool{false, true} {
		t.Run(fmt.Sprintf("hybrid=%v", hybrid), func(t *testing.T) {
			f, inj := faultyFTL(t, faultinject.Plan{Seed: 3, ProgramFaultProb: 0.02}, hybrid)
			n := f.LogicalPages()
			model := make([]byte, n)
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 4*n; i++ {
				lp := rng.Intn(n)
				v := byte(rng.Intn(255) + 1)
				if _, err := f.WritePage(lp, page(v, 4096), 4096); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				model[lp] = v
			}
			for lp, v := range model {
				if v == 0 {
					continue
				}
				data, _, err := f.ReadPage(lp)
				if err != nil || data == nil || data[0] != v {
					t.Fatalf("lp %d: want %#x, got %v (%v)", lp, v, data, err)
				}
			}
			if inj.Stats().ProgramFaults == 0 {
				t.Fatal("no program faults injected; the test exercised nothing")
			}
			if f.Stats().ProgramRetries == 0 {
				t.Fatal("program faults fired but the retry counter stayed zero")
			}
		})
	}
}

// TestGracefulEOLReadOnly drives the device to end of life via injected
// erase failures (each failed erase retires a block, so the spare pool
// drains fast) and pins the JEDEC-style read-only retirement contract.
func TestGracefulEOLReadOnly(t *testing.T) {
	f, inj := faultyFTL(t, faultinject.Plan{Seed: 5, EraseFaultProb: 0.5}, false)
	n := f.LogicalPages()
	model := make([]byte, n)
	rng := rand.New(rand.NewSource(5))
	var werr error
	for i := 0; i < 400*16; i++ {
		lp := rng.Intn(n)
		v := byte(rng.Intn(255) + 1)
		if _, err := f.WritePage(lp, page(v, 4096), 4096); err != nil {
			werr = err
			break
		}
		model[lp] = v
	}
	if werr == nil {
		t.Fatal("device never reached end of life under 50% erase failures")
	}
	if !errors.Is(werr, ErrReadOnly) {
		t.Fatalf("EOL error = %v, want ErrReadOnly", werr)
	}
	if !f.ReadOnly() || f.Bricked() || !f.Failed() {
		t.Fatalf("state after EOL: readOnly=%v bricked=%v failed=%v",
			f.ReadOnly(), f.Bricked(), f.Failed())
	}
	if inj.Stats().EraseFaults == 0 {
		t.Fatal("no erase faults injected")
	}
	if f.MainChip().Stats().BadBlocks == 0 {
		t.Fatal("erase failures retired no blocks")
	}
	// Read-only retirement keeps serving: every acknowledged write is
	// still readable, flushes still acknowledge, the wear registers say
	// "urgent" — but all mutation is refused.
	for lp, v := range model {
		if v == 0 {
			continue
		}
		data, _, err := f.ReadPage(lp)
		if err != nil || data == nil || data[0] != v {
			t.Fatalf("read-only device lost lp %d: %v (%v)", lp, data, err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatalf("Flush on read-only device: %v, want nil", err)
	}
	if _, err := f.TrimPage(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("TrimPage on read-only device: %v, want ErrReadOnly", err)
	}
	if _, err := f.WritePage(0, page(1, 4096), 4096); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("WritePage on read-only device: %v, want ErrReadOnly", err)
	}
	if _, err := f.Sanitize(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Sanitize on read-only device: %v, want ErrReadOnly", err)
	}
	if got := f.PreEOLInfo(); got != 3 {
		t.Fatalf("PreEOLInfo = %d, want 3 (urgent)", got)
	}
}

// TestBrickAtEOL pins the legacy behaviour the paper's BLU phones showed:
// with BrickAtEOL set, exhaustion hard-bricks instead of degrading.
func TestBrickAtEOL(t *testing.T) {
	inj := faultinject.New(faultinject.Plan{Seed: 5, EraseFaultProb: 0.5}, nil)
	cfg := Config{MainChip: testChipCfg(100_000), BrickAtEOL: true}
	cfg.MainChip.Inject = inj
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := f.LogicalPages()
	rng := rand.New(rand.NewSource(5))
	var werr error
	for i := 0; i < 400*16; i++ {
		if _, err := f.WritePage(rng.Intn(n), nil, 4096); err != nil {
			werr = err
			break
		}
	}
	if !errors.Is(werr, ErrBricked) {
		t.Fatalf("EOL error = %v, want ErrBricked", werr)
	}
	if !f.Bricked() || f.ReadOnly() {
		t.Fatalf("state after brick: bricked=%v readOnly=%v", f.Bricked(), f.ReadOnly())
	}
	if _, err := f.Flush(); !errors.Is(err, ErrBricked) {
		t.Fatalf("Flush on bricked device: %v, want ErrBricked", err)
	}
	if got := f.PreEOLInfo(); got != 3 {
		t.Fatalf("PreEOLInfo = %d, want 3", got)
	}
}

// TestEOLSpareBlocksProactive pins the proactive retirement knob: with the
// threshold set above the chip's real spare margin, the very first write
// consumes the margin and the second is refused read-only — before any
// allocation ever fails outright.
func TestEOLSpareBlocksProactive(t *testing.T) {
	f := newTestFTL(t, func(c *Config) { c.EOLSpareBlocks = 64 })
	if _, err := f.WritePage(0, page(1, 4096), 4096); err != nil {
		t.Fatalf("the write that trips the threshold must itself succeed: %v", err)
	}
	if !f.ReadOnly() {
		t.Fatal("spare margin below threshold but device not read-only")
	}
	if _, err := f.WritePage(1, page(2, 4096), 4096); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write after proactive retirement: %v, want ErrReadOnly", err)
	}
	if data, _, err := f.ReadPage(0); err != nil || data == nil || data[0] != 1 {
		t.Fatalf("proactively retired device lost data: %v (%v)", data, err)
	}
	if got := f.PreEOLInfo(); got != 3 {
		t.Fatalf("PreEOLInfo = %d, want 3", got)
	}
}

// BenchmarkWritePathFaultOverhead measures the cost of the fault hook on
// the FTL write path: baseline (no injector) versus an attached injector
// with an empty plan. The acceptance bar is <2% — the hook is a nil check
// when disabled and a counter bump plus a few compares when idle.
func BenchmarkWritePathFaultOverhead(b *testing.B) {
	run := func(b *testing.B, inject bool) {
		cfg := Config{MainChip: testChipCfg(100_000_000)}
		if inject {
			cfg.MainChip.Inject = faultinject.New(faultinject.Plan{}, nil)
		}
		f, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n := f.LogicalPages() / 2 // half-full keeps GC steady, not thrashing
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.WritePage(i%n, nil, 4096); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, false) })
	b.Run("empty-plan", func(b *testing.B) { run(b, true) })
}
