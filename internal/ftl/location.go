// Package ftl implements a page-mapped flash translation layer: logical page
// mapping, greedy or cost-benefit garbage collection, dynamic and static
// wear-leveling, over-provisioning, bad-block management, and — for devices
// like the paper's "eMMC 16GB" — a hybrid layout with a small high-endurance
// pool ("Type A") in front of the main pool ("Type B"), including the
// dynamic pool merging under high utilisation that §4.3 infers from the
// wear-indicator data in Table 1.
//
// The FTL is the component that turns host writes into flash wear, so its
// accounting (write amplification, per-pool erase counts, the JEDEC-style
// 11-level life-time estimates) is what every wear experiment in the paper
// ultimately measures.
package ftl

import "fmt"

// PoolID distinguishes the hybrid pools. JEDEC eMMC 5.1 reports separate
// life-time estimates for "Type A" and "Type B" memory; the paper concludes
// Type A is the smaller, more performant (SLC-like) memory.
type PoolID uint8

const (
	// PoolA is the small, high-endurance pool (SLC-mode cache).
	PoolA PoolID = 0
	// PoolB is the main, high-density pool.
	PoolB PoolID = 1
)

// String implements fmt.Stringer.
func (p PoolID) String() string {
	switch p {
	case PoolA:
		return "Type A"
	case PoolB:
		return "Type B"
	default:
		return fmt.Sprintf("Pool(%d)", uint8(p))
	}
}

// loc packs a physical page location into 8 bytes: pool (8 bits), block
// (32 bits), page (16 bits). The zero value is not a valid location; use
// noLoc for "unmapped".
type loc uint64

const noLoc loc = ^loc(0)

func makeLoc(pool PoolID, block, page int) loc {
	return loc(uint64(pool)<<48 | uint64(uint32(block))<<16 | uint64(uint16(page)))
}

func (l loc) pool() PoolID { return PoolID(l >> 48) }
func (l loc) block() int   { return int(uint32(l >> 16)) }
func (l loc) page() int    { return int(uint16(l)) }

func (l loc) String() string {
	if l == noLoc {
		return "unmapped"
	}
	return fmt.Sprintf("%v/blk%d/pg%d", l.pool(), l.block(), l.page())
}
