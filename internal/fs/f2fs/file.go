package f2fs

import (
	"fmt"

	"flashwear/internal/fs"
)

// file implements fs.File on an f2fs inode.
type file struct {
	fs     *FS
	n      *node
	closed bool
}

func (f *file) alive() error {
	if f.closed {
		return fs.ErrUnmounted
	}
	return f.fs.alive()
}

// Size implements fs.File.
func (f *file) Size() int64 { return f.n.size }

// Close implements fs.File.
func (f *file) Close() error {
	f.closed = true
	return nil
}

// mapSlot resolves a file block index to the node holding its pointer and
// the slot within that node, allocating indirect nodes as needed.
func (v *FS) mapSlot(in *node, fileBlk int64, alloc bool) (holder *node, slot uint32, err error) {
	if fileBlk < 0 || fileBlk >= MaxFileBlocks {
		return nil, 0, fs.ErrTooLarge
	}
	if fileBlk < NDirect {
		return in, uint32(fileBlk), nil
	}
	rest := fileBlk - NDirect
	which := rest / IndirectPtrs
	slot = uint32(rest % IndirectPtrs)
	indirID := in.indirect[which]
	if indirID == 0 {
		if !alloc {
			return nil, 0, nil
		}
		id, err := v.allocNodeID()
		if err != nil {
			return nil, 0, err
		}
		ind := newIndirect(id)
		v.nodes[id] = ind
		in.indirect[which] = id
		in.dirty = true
		return ind, slot, nil
	}
	ind, err := v.loadNode(indirID)
	if err != nil {
		return nil, 0, err
	}
	if !ind.isIndirect() {
		return nil, 0, fmt.Errorf("%w: node %d is not indirect", ErrCorrupt, indirID)
	}
	return ind, slot, nil
}

// readNodeData reads file content through a node's mapping.
func (v *FS) readNodeData(in *node, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("f2fs: negative offset %d", off)
	}
	if off >= in.size {
		return 0, nil
	}
	if max := in.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	n := 0
	for n < len(p) {
		blkIdx := (off + int64(n)) / BlockSize
		blkOff := int((off + int64(n)) % BlockSize)
		chunk := BlockSize - blkOff
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		holder, slot, err := v.mapSlot(in, blkIdx, false)
		if err != nil {
			return n, err
		}
		var addr uint32
		if holder != nil {
			if addr, err = v.ptrOf(holder, slot); err != nil {
				return n, err
			}
		}
		if addr == 0 {
			clear(p[n : n+chunk]) // hole
		} else {
			buf, err := readBlock(v.dev, addr)
			if err != nil {
				return n, err
			}
			copy(p[n:n+chunk], buf[blkOff:])
		}
		n += chunk
	}
	return n, nil
}

// writeNodeData writes file content out-of-place through a node's mapping.
// Every touched block is appended to the data log (copy-on-write, including
// partial-block updates, which first read the old content).
func (v *FS) writeNodeData(in *node, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("f2fs: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		blkIdx := (off + int64(n)) / BlockSize
		blkOff := int((off + int64(n)) % BlockSize)
		chunk := BlockSize - blkOff
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		holder, slot, err := v.mapSlot(in, blkIdx, true)
		if err != nil {
			return n, err
		}
		oldAddr, err := v.ptrOf(holder, slot)
		if err != nil {
			return n, err
		}
		newAddr, err := v.allocLog(&v.dataLog)
		if err != nil {
			return n, err
		}
		if v.opts.DataAccounting && in.mode != modeDir {
			if err := v.dev.WriteAccounted(int64(newAddr)*BlockSize, BlockSize); err != nil {
				return n, err
			}
		} else {
			buf := make([]byte, BlockSize)
			if (blkOff != 0 || chunk != BlockSize) && oldAddr != 0 {
				old, err := readBlock(v.dev, oldAddr)
				if err != nil {
					return n, err
				}
				copy(buf, old)
			}
			copy(buf[blkOff:], p[n:n+chunk])
			if err := writeBlock(v.dev, newAddr, buf); err != nil {
				return n, err
			}
		}
		v.statDataWrites++
		if oldAddr != 0 {
			v.invalidateBlock(oldAddr)
		}
		v.setPtrOf(holder, slot, newAddr)
		holder.dirty = true
		v.markValid(newAddr, holder.id, slot)
		n += chunk
	}
	if off+int64(n) > in.size {
		in.size = off + int64(n)
	}
	in.mtime = v.nowNanos()
	in.dirty = true
	return n, nil
}

// ReadAt implements fs.File.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	if err := f.alive(); err != nil {
		return 0, err
	}
	return f.fs.readNodeData(f.n, p, off)
}

// WriteAt implements fs.File.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if err := f.alive(); err != nil {
		return 0, err
	}
	n, err := f.fs.writeNodeData(f.n, p, off)
	if err != nil {
		return n, err
	}
	if f.fs.opts.SyncEveryWrite {
		if err := f.Sync(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Sync implements fs.File: write the file's dirty node chain with the
// roll-forward (fsync) marker — data plus one node block per dirty node,
// the 2x write path of Figure 4.
func (f *file) Sync() error {
	if err := f.alive(); err != nil {
		return err
	}
	v := f.fs
	// Ordering barrier: the data this sync covers must be durable before
	// the fsync-marked nodes that reference it, or roll-forward recovery
	// could resurrect pointers to unwritten blocks.
	if err := v.dev.Flush(); err != nil {
		return err
	}
	// Dirty indirect nodes first, then the inode (which references them).
	for _, id := range f.n.indirect {
		if id == 0 {
			continue
		}
		if ind, ok := v.nodes[id]; ok && ind != nil && ind.dirty {
			if err := v.writeNode(ind, true); err != nil {
				return err
			}
		}
	}
	if f.n.dirty {
		if err := v.writeNode(f.n, true); err != nil {
			return err
		}
	}
	if err := v.dev.Flush(); err != nil {
		return err
	}
	v.fsyncsSinceCP++
	if v.fsyncsSinceCP >= checkpointInterval {
		return v.checkpointLocked()
	}
	return nil
}

// Truncate implements fs.File.
func (f *file) Truncate(size int64) error {
	if err := f.alive(); err != nil {
		return err
	}
	if err := f.fs.truncateNode(f.n, size); err != nil {
		return err
	}
	return f.fs.writeNode(f.n, true)
}

// truncateNode shrinks (or sparsely grows) a node to size, invalidating
// dropped blocks and releasing empty indirect nodes.
func (v *FS) truncateNode(in *node, size int64) error {
	if size < 0 {
		return fmt.Errorf("f2fs: negative truncate %d", size)
	}
	if size >= in.size {
		in.size = size
		in.dirty = true
		return nil
	}
	firstDead := (size + BlockSize - 1) / BlockSize
	for i := firstDead; i < NDirect; i++ {
		if in.direct[i] != 0 {
			v.invalidateBlock(in.direct[i])
			in.direct[i] = 0
		}
	}
	for w := int64(0); w < NIndirectIDs; w++ {
		id := in.indirect[w]
		if id == 0 {
			continue
		}
		lo := firstDead - NDirect - w*IndirectPtrs
		if lo >= IndirectPtrs {
			continue
		}
		if lo < 0 {
			lo = 0
		}
		ind, err := v.loadNode(id)
		if err != nil {
			return err
		}
		empty := true
		for s := int64(0); s < IndirectPtrs; s++ {
			if ind.ptrs[s] == 0 {
				continue
			}
			if s >= lo {
				v.invalidateBlock(ind.ptrs[s])
				ind.ptrs[s] = 0
				ind.dirty = true
			} else {
				empty = false
			}
		}
		if empty && lo == 0 {
			if addr := v.natLookup(id); addr != 0 {
				v.invalidateBlock(addr)
			}
			v.natSet(id, 0)
			delete(v.nodes, id)
			in.indirect[w] = 0
		}
	}
	in.size = size
	in.mtime = v.nowNanos()
	in.dirty = true
	return nil
}

var _ fs.File = (*file)(nil)
