package faultinject

import (
	"strings"
	"testing"
	"time"

	"flashwear/internal/nand"
	"flashwear/internal/telemetry"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,read=1e-4,program=2e-5,erase=3e-5,cut-every=100000,cut-at=250000;700000,cut-time=24h;240h")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.ReadFaultProb != 1e-4 || p.ProgramFaultProb != 2e-5 || p.EraseFaultProb != 3e-5 {
		t.Fatalf("probs: %+v", p)
	}
	if p.PowerCutEvery != 100000 {
		t.Fatalf("PowerCutEvery = %d", p.PowerCutEvery)
	}
	if len(p.PowerCutOps) != 2 || p.PowerCutOps[0] != 250000 || p.PowerCutOps[1] != 700000 {
		t.Fatalf("PowerCutOps = %v", p.PowerCutOps)
	}
	if len(p.PowerCutAt) != 2 || p.PowerCutAt[0] != 24*time.Hour || p.PowerCutAt[1] != 240*time.Hour {
		t.Fatalf("PowerCutAt = %v", p.PowerCutAt)
	}

	if p, err := ParsePlan(""); err != nil || !p.Empty() {
		t.Fatalf("empty string: %+v, %v", p, err)
	}
	for _, bad := range []string{"read", "read=2", "read=-1", "bogus=1", "cut-every=-3", "cut-at=0", "cut-time=-1h"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q): want error", bad)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring the error must contain
	}{
		// Malformed values: the strconv/ParseDuration error must surface
		// with the offending key.
		{"read=abc", "read"},
		{"program=1e", "program"},
		{"erase=", "erase"},
		{"seed=7.5", "seed"},
		{"cut-every=ten", "cut-every"},
		{"cut-at=100;x;300", "cut-at"},
		{"cut-time=24h;soon", "cut-time"},
		// Out-of-range values rejected by Validate after parsing.
		{"read=1.5", "ReadFaultProb"},
		{"program=-0.1", "ProgramFaultProb"},
		{"erase=2", "EraseFaultProb"},
		// Missing '=' and unknown keys.
		{"seed", "key=value"},
		{"seed=1,,read=1e-4", "key=value"},
		{"foo=1", `unknown key "foo"`},
		{"Read=1e-4", `unknown key "Read"`}, // keys are case-sensitive
		// Duplicate scalar clauses: the last-one-wins trap.
		{"read=1e-3,read=1e-6", `duplicate "read"`},
		{"seed=1,seed=2", `duplicate "seed"`},
		{"program=1e-5,program=1e-5", `duplicate "program"`},
		{"erase=1e-5,erase=2e-5", `duplicate "erase"`},
		{"cut-every=5,cut-every=6", `duplicate "cut-every"`},
	}
	for _, tc := range cases {
		_, err := ParsePlan(tc.in)
		if err == nil {
			t.Errorf("ParsePlan(%q): want error containing %q, got nil", tc.in, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParsePlan(%q) = %v, want error containing %q", tc.in, err, tc.want)
		}
	}
}

func TestParsePlanRepeatedListClauses(t *testing.T) {
	// The list keys may repeat: repeats append, exactly like ';' within a
	// single clause. Only the scalar keys are duplicate-checked.
	p, err := ParsePlan("cut-at=100,cut-at=200;300,cut-time=1h,cut-time=2h")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{100, 200, 300}; len(p.PowerCutOps) != 3 ||
		p.PowerCutOps[0] != want[0] || p.PowerCutOps[1] != want[1] || p.PowerCutOps[2] != want[2] {
		t.Fatalf("PowerCutOps = %v, want %v", p.PowerCutOps, want)
	}
	if len(p.PowerCutAt) != 2 || p.PowerCutAt[0] != time.Hour || p.PowerCutAt[1] != 2*time.Hour {
		t.Fatalf("PowerCutAt = %v", p.PowerCutAt)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, ReadFaultProb: 0.05, ProgramFaultProb: 0.02, EraseFaultProb: 0.02}
	run := func() []nand.Fault {
		j := New(plan, nil)
		var out []nand.Fault
		for i := 0; i < 5000; i++ {
			out = append(out, j.Inject(nand.Op(i%3)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: %v != %v", i, a[i], b[i])
		}
	}
	j := New(plan, nil)
	faults := 0
	for i := 0; i < 5000; i++ {
		if j.Inject(nand.Op(i%3)) != nand.FaultNone {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected at these probabilities")
	}
	s := j.Stats()
	if int(s.ReadFaults+s.ProgramFaults+s.EraseFaults) != faults {
		t.Fatalf("stats %+v vs %d observed", s, faults)
	}
}

func TestInjectorEmptyPlanConsumesNoRNG(t *testing.T) {
	// An empty plan must never fault and must not draw from its RNG, so
	// enabling the injector with a no-op plan cannot perturb anything.
	j := New(Plan{Seed: 1}, nil)
	for i := 0; i < 10000; i++ {
		if f := j.Inject(nand.Op(i % 3)); f != nand.FaultNone {
			t.Fatalf("op %d: fault %v from empty plan", i, f)
		}
	}
	before := j.rng.Int63()
	want := New(Plan{Seed: 1}, nil).rng.Int63()
	if before != want {
		t.Fatal("empty plan consumed injector RNG")
	}
}

func TestInjectorPowerCutSchedules(t *testing.T) {
	j := New(Plan{PowerCutOps: []int64{5, 3}}, nil) // unsorted on purpose
	for i := int64(1); i < 3; i++ {
		if f := j.Inject(nand.OpRead); f != nand.FaultNone {
			t.Fatalf("op %d: %v", i, f)
		}
	}
	if f := j.Inject(nand.OpRead); f != nand.FaultPowerCut {
		t.Fatalf("op 3: %v, want power cut", f)
	}
	if !j.Down() {
		t.Fatal("not down after cut")
	}
	// Latched: everything fails without consuming ops.
	if f := j.Inject(nand.OpProgram); f != nand.FaultPowerCut {
		t.Fatalf("while down: %v", f)
	}
	if got := j.Stats().Ops; got != 3 {
		t.Fatalf("ops = %d, want 3 (down ops don't count)", got)
	}
	j.PowerRestored()
	if j.Down() {
		t.Fatal("still down after restore")
	}
	// ops resumes at 4; next cut at op 5.
	if f := j.Inject(nand.OpRead); f != nand.FaultNone {
		t.Fatalf("op 4: %v", f)
	}
	if f := j.Inject(nand.OpRead); f != nand.FaultPowerCut {
		t.Fatal("op 5: want second scheduled cut")
	}
	j.PowerRestored()
	if f := j.Inject(nand.OpRead); f != nand.FaultNone {
		t.Fatal("schedule exhausted, want no more cuts")
	}
	if got := j.Stats().PowerCuts; got != 2 {
		t.Fatalf("PowerCuts = %d, want 2", got)
	}
}

func TestInjectorPowerCutEvery(t *testing.T) {
	j := New(Plan{PowerCutEvery: 4}, nil)
	cuts := 0
	for i := 0; i < 12; i++ {
		if j.Inject(nand.OpRead) == nand.FaultPowerCut {
			cuts++
			j.PowerRestored()
		}
	}
	if cuts != 3 {
		t.Fatalf("cuts = %d, want 3 (every 4 of 12 ops)", cuts)
	}
}

func TestInjectorPowerCutAtTime(t *testing.T) {
	now := time.Duration(0)
	j := New(Plan{PowerCutAt: []time.Duration{10 * time.Hour}}, func() time.Duration { return now })
	if f := j.Inject(nand.OpRead); f != nand.FaultNone {
		t.Fatalf("before mark: %v", f)
	}
	now = 11 * time.Hour
	if f := j.Inject(nand.OpRead); f != nand.FaultPowerCut {
		t.Fatalf("after mark: %v, want power cut", f)
	}
	j.PowerRestored()
	if f := j.Inject(nand.OpRead); f != nand.FaultNone {
		t.Fatal("time cut must fire once")
	}
}

func TestInjectorCutNow(t *testing.T) {
	j := New(Plan{}, nil)
	j.CutNow()
	j.CutNow() // idempotent while down
	if !j.Down() || j.Stats().PowerCuts != 1 {
		t.Fatalf("down=%v cuts=%d", j.Down(), j.Stats().PowerCuts)
	}
}

func TestInjectorInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	j := New(Plan{ReadFaultProb: 1}, nil)
	j.Instrument(reg)
	j.Inject(nand.OpRead)
	snap := reg.Snapshot(0)
	for name, want := range map[string]int64{"fault.ops": 1, "fault.read_faults": 1, "fault.power_cuts": 0} {
		i := snap.Index(name)
		if i < 0 {
			t.Fatalf("missing instrument %s", name)
		}
		if got := snap.Points[i].Int; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
