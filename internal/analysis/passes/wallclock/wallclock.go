// Package wallclock forbids wall-clock time in simulation code.
//
// Invariant: a simulation run is a pure function of its Spec (DESIGN.md
// §6). Every timestamp must come from the injected simclock.Clock;
// time.Now and friends smuggle in host state, making runs unrepeatable and
// crash/remount suites unreplayable. Durations and time.Duration
// arithmetic remain fine — only sources of real time (and real delays) are
// banned. Test files are exempt: harness timeouts and benchmarks
// legitimately watch the host clock.
//
// Ops-plane packages — code that measures the real process rather than
// the simulated one (DESIGN.md §12) — opt out with a package-level
// declaration:
//
//	//flashvet:ops-domain <reason>
//
// A package carrying one well-formed declaration may use the host clock
// freely; the reason is mandatory, exactly as for //flashvet:ignore. The
// declaration is deliberately coarse (whole package, not one line): a
// package is either in the sim domain or out of it, and a package that is
// out must say what it is instead.
//
// To stop sim code laundering host time through the ops plane, the
// analyzer also bans the ops plane's exported raw clock readbacks —
// obs.WallNow, and runtrace's Totals/Snapshot accessors (which return
// measured wall-clock durations) — outside ops-domain packages, with the
// same severity as time.Now itself. Emitting spans (runtrace.Begin/End)
// stays legal everywhere: a span records where time went without letting
// the caller read it back.
package wallclock

import (
	"go/ast"
	"go/types"

	"flashwear/internal/analysis"
)

// banned lists the package-level time functions that read or wait on the
// host clock. Constructors like time.Date are allowed: they compute a
// value from explicit arguments.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// OpsSources are clock sources exported by ops-plane packages: calling
// one from a non-ops-domain package smuggles wall-clock time into
// simulation code just as surely as time.Now does. Exported because
// simtaint seeds its wallclock taint from exactly this set — the
// syntactic ban here catches direct calls, and the taint analysis
// catches the value flowing onward through returns, fields, and
// channels; the two must agree on what a source is.
var OpsSources = map[string]map[string]bool{
	"flashwear/internal/obs":      {"WallNow": true},
	"flashwear/internal/runtrace": {"Totals": true, "Snapshot": true},
}

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock time in simulation code\n\n" +
		"Simulated time comes from the injected simclock.Clock; time.Now,\n" +
		"time.Since, time.Sleep and the timer constructors read host state\n" +
		"and break bit-exact replay. Ops-plane packages opt out with a\n" +
		"//flashvet:ops-domain <reason> declaration.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// wallclock is the suite's designated reporter of malformed
	// declarations (analysis.OpsDomain doc); globalrand consults the same
	// declarations silently.
	exempt := analysis.OpsDomain(pass, true)
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if exempt || pass.IsTestFile(sel.Pos()) {
			return true
		}
		switch {
		case fn.Pkg().Path() == "time" && banned[fn.Name()]:
			pass.Reportf(sel.Pos(), "wall-clock time.%s in simulation code: use the injected simclock.Clock", fn.Name())
		case OpsSources[fn.Pkg().Path()][fn.Name()]:
			pass.Reportf(sel.Pos(), "ops-plane clock source %s.%s in simulation code: only //flashvet:ops-domain packages may read host time", fn.Pkg().Name(), fn.Name())
		}
		return true
	})
	return nil
}
