package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// A Waiver is one suppression in force somewhere in the tree: a
// //flashvet:ignore directive or a package-level //flashvet:ops-domain
// declaration. The audit mode (flashvet -waivers) prints them all, so
// the set of places the linters are told to look away is itself a
// reviewable, diffable artifact — CI pins it to a committed baseline,
// and growing it takes a code-reviewed change to that file, not just a
// comment.
type Waiver struct {
	File string // as loaded; callers may relativize
	Line int
	Kind string // "ignore" or "ops-domain"
	// Detail is the directive's payload: "analyzer[,analyzer] — reason"
	// for ignores, the reason for ops-domain declarations, with
	// "MALFORMED:" prefixed when the directive would not parse.
	Detail string
}

func (w Waiver) String() string {
	return fmt.Sprintf("%s:%d: %s %s", w.File, w.Line, w.Kind, w.Detail)
}

// Waivers scans the loaded packages for every suppression directive,
// sorted by file then line. FactsOnly packages are skipped: under a
// narrow pattern they were loaded only for summaries, and under ./...
// every package is matched directly anyway, so including them would
// double-count.
func Waivers(fset *token.FileSet, pkgs []*Package) []Waiver {
	var out []Waiver
	for _, pkg := range pkgs {
		if pkg.FactsOnly {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := fset.Position(c.Pos())
					if text, ok := directiveText(c.Text, ignorePrefix); ok {
						names, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
						detail := names + " — " + strings.TrimSpace(reason)
						if names == "" || strings.TrimSpace(reason) == "" {
							detail = "MALFORMED: " + strings.TrimSpace(text)
						}
						out = append(out, Waiver{pos.Filename, pos.Line, "ignore", detail})
					} else if text, ok := directiveText(c.Text, OpsDomainPrefix); ok {
						detail := strings.TrimSpace(text)
						if detail == "" {
							detail = "MALFORMED: no reason"
						}
						out = append(out, Waiver{pos.Filename, pos.Line, "ops-domain", detail})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// directiveText returns the payload after //<prefix>, rejecting comments
// where the prefix is merely a prefix of a longer word, and trimming
// trailing commentary after an embedded "//" — the same grammar the
// directives themselves use.
func directiveText(comment, prefix string) (string, bool) {
	text, ok := strings.CutPrefix(comment, "//"+prefix)
	if !ok {
		return "", false
	}
	if i := strings.Index(text, "//"); i >= 0 {
		text = text[:i]
	}
	if text != "" && !strings.HasPrefix(text, " ") && !strings.HasPrefix(text, "\t") {
		return "", false
	}
	return text, true
}
