package analysis_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"flashwear/internal/analysis"
	"flashwear/internal/analysis/checktest"
	"flashwear/internal/analysis/flashvet"
	"flashwear/internal/analysis/passes/floataccum"
	"flashwear/internal/analysis/passes/globalrand"
	"flashwear/internal/analysis/passes/locksafe"
	"flashwear/internal/analysis/passes/maporder"
	"flashwear/internal/analysis/passes/opserrcheck"
	"flashwear/internal/analysis/passes/simtaint"
	"flashwear/internal/analysis/passes/wallclock"
)

// One fixture per analyzer: each seeds violations, sanctioned idioms, and
// a //flashvet:ignore waiver, proving the analyzer both fires and can be
// silenced (ISSUE 5 acceptance).

func TestWallclockFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/wallclock", wallclock.Analyzer)
}

// TestWallclockOpsDomainFixture pins the //flashvet:ops-domain opt-out: a
// declared ops-plane package uses the host clock with no findings.
func TestWallclockOpsDomainFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/wallclockops", wallclock.Analyzer)
}

// TestWallclockOpsDomainBadFixture pins the failure mode: a declaration
// without a reason is itself a finding and grants no exemption.
func TestWallclockOpsDomainBadFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/wallclockopsbad", wallclock.Analyzer)
}

func TestGlobalrandFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/globalrand", globalrand.Analyzer)
}

// TestGlobalrandOpsDomainFixture pins the //flashvet:ops-domain opt-out
// for globalrand: a declared ops-plane package (retry-backoff jitter)
// uses the global source and literal seeds with no findings.
func TestGlobalrandOpsDomainFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/globalrandops", globalrand.Analyzer)
}

// TestGlobalrandOpsDomainBadFixture pins the failure mode shared with
// wallclock: a malformed declaration grants no exemption (the finding
// itself is wallclock's to report, once for the whole suite).
func TestGlobalrandOpsDomainBadFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/globalrandopsbad", globalrand.Analyzer)
}

func TestMaporderFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/maporder", maporder.Analyzer)
}

func TestFloataccumFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/floataccum/fleet", floataccum.Analyzer)
}

func TestOpserrcheckFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/opserrcheck", opserrcheck.Analyzer)
}

// TestLocksafeFixture covers both locksafe hazards (lock copies,
// blocking under a held mutex) and the sanctioned shapes that must stay
// silent: release-before-block, select with default, goroutines launched
// under a lock, Cond.Wait, mutexed file fsync.
func TestLocksafeFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/locksafe", locksafe.Analyzer)
}

// TestSimtaintFixture is the cross-package laundering suite: the sim
// package contains no banned call at all — taint arrives from the ops
// package purely through exported facts, and flows through struct
// fields, closures, channels, generics, and fmt before hitting declared
// sinks. Loading only ./sim forces ops through the facts-only path, so
// this test exercises the whole summary pipeline, not just the walker.
func TestSimtaintFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/simtaint/sim", simtaint.Analyzer)
}

// TestIgnoreFixture pins the directive grammar itself: both waiver forms,
// the mandatory reason, unknown-analyzer rejection, and the stale-waiver
// check, under the full suite.
func TestIgnoreFixture(t *testing.T) {
	checktest.Run(t, "./testdata/src/ignoredir", flashvet.All()...)
}

// TestRealTreeClean is `make lint` as a test: the full suite over the full
// module must come back empty. A finding here means a determinism or
// safety invariant regressed (or a waiver went stale) — fix it or justify
// it with //flashvet:ignore, never by loosening the analyzer.
func TestRealTreeClean(t *testing.T) {
	root := moduleRoot(t)
	pkgs, fset, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from module root")
	}
	findings, err := analysis.Run(fset, pkgs, flashvet.All(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestVetToolProtocol proves the `go vet -vettool` integration end to end:
// the binary speaks -V=full/-flags/vet.cfg well enough for cmd/go to drive
// it, passes a clean package, and fails a seeded one.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "flashvet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/flashvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building flashvet: %v\n%s", err, out)
	}

	vet := func(pattern string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, pattern)
		cmd.Dir = root
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		return buf.String(), err
	}

	if out, err := vet("./internal/simclock"); err != nil {
		t.Errorf("go vet -vettool on a clean package failed: %v\n%s", err, out)
	}
	out, err := vet("./internal/analysis/testdata/src/wallclock")
	if err == nil {
		t.Errorf("go vet -vettool passed the seeded wallclock fixture:\n%s", out)
	}
	if !strings.Contains(out, "wall-clock time.Now") {
		t.Errorf("seeded fixture output missing wallclock finding:\n%s", out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
