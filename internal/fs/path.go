package fs

import "strings"

// SplitPath normalises an absolute slash-separated path into components.
// "/" and "" yield an empty slice (the root). It returns ErrBadName for
// components that are empty, ".", "..", or overlong.
func SplitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, c := range parts {
		if err := CheckName(c); err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// MaxNameLen is the longest permitted path component.
const MaxNameLen = 200

// CheckName validates a single path component.
func CheckName(name string) error {
	if name == "" || name == "." || name == ".." || len(name) > MaxNameLen ||
		strings.ContainsAny(name, "/\x00") {
		return ErrBadName
	}
	return nil
}

// Dir and Base split a path into its parent and final component.
func DirBase(path string) (dir string, base string, err error) {
	parts, err := SplitPath(path)
	if err != nil {
		return "", "", err
	}
	if len(parts) == 0 {
		return "", "", ErrBadName
	}
	return "/" + strings.Join(parts[:len(parts)-1], "/"), parts[len(parts)-1], nil
}
