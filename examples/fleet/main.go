// Fleet: the paper's §4.4 conclusion at population scale. A small-town
// carrier ships one budget phone model; a popular app picks up a cache
// bug like Spotify's [26] and a handful of users install something
// actively hostile. How many warranty returns arrive, and how fast?
//
// This is the programmatic counterpart of cmd/fleetsim: it builds a
// custom fleet.Spec (one device model, a harsher class mix than the
// default) and reads the merged statistics directly.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"flashwear/internal/device"
	"flashwear/internal/fleet"
	"flashwear/internal/report"
)

func main() {
	spec := fleet.Spec{
		Devices: 500,
		Seed:    1,
		Days:    90, // one quarter
		Scale:   8192,
		Profiles: []fleet.ProfileWeight{
			{Profile: device.ProfileBLU4(), Weight: 1},
		},
		Classes: []fleet.ClassWeight{
			{Class: fleet.ClassBenign, Weight: 0.92},
			{Class: fleet.ClassBuggy, Weight: 0.06},
			{Class: fleet.ClassAttack, Weight: 0.02},
		},
		Progress: func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "simulated %d/%d phones\n", done, total)
			}
		},
	}
	res, err := fleet.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	t := res.Total
	fmt.Printf("One quarter, %d phones (%s):\n", t.Devices, spec.Profiles[0].Profile.Name)
	fmt.Printf("  returned bricked:   %d (%.1f%%)\n", t.Bricked, t.BrickFraction()*100)
	fmt.Printf("  mean time-to-brick: %.0f days\n", t.MeanDaysToBrick())
	for _, class := range []string{"benign", "buggy", "attack"} {
		if g := res.ByClass[class]; g != nil {
			fmt.Printf("  %-7s phones: %3d, bricked %d\n", class, g.Devices, g.Bricked)
		}
	}
	if t.Bricked > 0 {
		p := report.Percentiles(res.TimeToBrick, 0.5, 0.9)
		fmt.Printf("  half the dead phones died within %.0f days, 90%% within %.0f\n", p[0], p[1])
	}
	fmt.Println("\nEvery one of those phones passed its app store review: the bug")
	fmt.Println("and the attack are unprivileged writes to private app storage.")
}
