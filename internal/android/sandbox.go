package android

import (
	"flashwear/internal/fs"
	"flashwear/internal/wtrace"
)

// sandboxFS is the view an app gets of storage: its private directory,
// reachable with no permissions at all (§4.4: "our application required no
// special permissions"), with every operation accounted to the app. When
// wear tracing is on, every mutating operation also runs under the app's
// origin tag, so the wear it causes is attributed to the app. Read paths
// are left untagged — reads cannot program NAND.
type sandboxFS struct {
	phone *Phone
	app   string
	root  string        // e.g. "/data/com.example.wear"
	org   wtrace.Origin // the app's wear-trace origin (0 when tracing off)
}

func (s *sandboxFS) path(p string) string { return s.root + "/" + trimSlashes(p) }

func trimSlashes(p string) string {
	for len(p) > 0 && p[0] == '/' {
		p = p[1:]
	}
	return p
}

// Name implements fs.FileSystem.
func (s *sandboxFS) Name() string { return s.phone.fsys.Name() }

// Create implements fs.FileSystem.
func (s *sandboxFS) Create(path string) (fs.File, error) {
	prev := s.phone.orgEnter(s.org)
	f, err := s.phone.fsys.Create(s.path(path))
	s.phone.orgExit(prev)
	if err != nil {
		return nil, err
	}
	return &sandboxFile{File: f, phone: s.phone, app: s.app, org: s.org}, nil
}

// Open implements fs.FileSystem.
func (s *sandboxFS) Open(path string) (fs.File, error) {
	f, err := s.phone.fsys.Open(s.path(path))
	if err != nil {
		return nil, err
	}
	return &sandboxFile{File: f, phone: s.phone, app: s.app, org: s.org}, nil
}

// Remove implements fs.FileSystem.
func (s *sandboxFS) Remove(path string) error {
	prev := s.phone.orgEnter(s.org)
	err := s.phone.fsys.Remove(s.path(path))
	s.phone.orgExit(prev)
	return err
}

// Rename implements fs.FileSystem; both paths are confined to the sandbox.
func (s *sandboxFS) Rename(oldPath, newPath string) error {
	prev := s.phone.orgEnter(s.org)
	err := s.phone.fsys.Rename(s.path(oldPath), s.path(newPath))
	s.phone.orgExit(prev)
	return err
}

// Mkdir implements fs.FileSystem.
func (s *sandboxFS) Mkdir(path string) error {
	prev := s.phone.orgEnter(s.org)
	err := s.phone.fsys.Mkdir(s.path(path))
	s.phone.orgExit(prev)
	return err
}

// ReadDir implements fs.FileSystem.
func (s *sandboxFS) ReadDir(path string) ([]fs.DirEntry, error) {
	return s.phone.fsys.ReadDir(s.path(path))
}

// Stat implements fs.FileSystem.
func (s *sandboxFS) Stat(path string) (fs.FileInfo, error) {
	return s.phone.fsys.Stat(s.path(path))
}

// Sync implements fs.FileSystem. The whole-FS sync flushes metadata the
// app dirtied, so it runs under the app's tag.
func (s *sandboxFS) Sync() error {
	s.phone.accountSync(s.app)
	prev := s.phone.orgEnter(s.org)
	err := s.phone.fsys.Sync()
	s.phone.orgExit(prev)
	return err
}

// Unmount is not permitted from a sandbox.
func (s *sandboxFS) Unmount() error { return fs.ErrReadOnly }

// sandboxFile wraps a file with per-app accounting, monitor hooks, and
// wear-trace origin tagging.
type sandboxFile struct {
	fs.File
	phone *Phone
	app   string
	org   wtrace.Origin
}

// WriteAt implements fs.File.
func (f *sandboxFile) WriteAt(p []byte, off int64) (int, error) {
	prev := f.phone.orgEnter(f.org)
	n, err := f.File.WriteAt(p, off)
	f.phone.orgExit(prev)
	if n > 0 {
		f.phone.accountWrite(f.app, int64(n))
	}
	return n, err
}

// ReadAt implements fs.File.
func (f *sandboxFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	if n > 0 {
		f.phone.accountRead(f.app, int64(n))
	}
	return n, err
}

// Truncate implements fs.File.
func (f *sandboxFile) Truncate(size int64) error {
	prev := f.phone.orgEnter(f.org)
	err := f.File.Truncate(size)
	f.phone.orgExit(prev)
	return err
}

// Sync implements fs.File.
func (f *sandboxFile) Sync() error {
	f.phone.accountSync(f.app)
	prev := f.phone.orgEnter(f.org)
	err := f.File.Sync()
	f.phone.orgExit(prev)
	return err
}

// Close implements fs.File; closing can flush dirty state.
func (f *sandboxFile) Close() error {
	prev := f.phone.orgEnter(f.org)
	err := f.File.Close()
	f.phone.orgExit(prev)
	return err
}

var _ fs.FileSystem = (*sandboxFS)(nil)
var _ fs.File = (*sandboxFile)(nil)
