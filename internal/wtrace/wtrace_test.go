package wtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"flashwear/internal/telemetry"
)

func TestOriginRegistration(t *testing.T) {
	l := NewLedger()
	if got := l.Origin("os"); got != OriginOS {
		t.Fatalf(`Origin("os") = %d, want 0`, got)
	}
	a := l.Origin("app.a")
	b := l.Origin("app.b")
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", a, b)
	}
	if again := l.Origin("app.a"); again != a {
		t.Fatalf("re-registering returned %d, want %d", again, a)
	}
	if got := l.Origins(); len(got) != 3 || got[0] != "os" || got[1] != "app.a" || got[2] != "app.b" {
		t.Fatalf("Origins() = %v", got)
	}
}

func TestOriginNameValidation(t *testing.T) {
	l := NewLedger()
	for _, bad := range []string{"", "a,b", `a"b`, "a\nb", "a\rb"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Origin(%q) did not panic", bad)
				}
			}()
			l.Origin(bad)
		}()
	}
}

// TestErasePlurality pins the erase attribution rule: plurality owner wins,
// ties break to the lowest origin id, an empty block bills "os", and every
// present origin receives its page-weighted erase share.
func TestErasePlurality(t *testing.T) {
	tr := New()
	a, b := tr.Origin("a"), tr.Origin("b")

	tr.EraseBlockAttrib(0, []Origin{a, a, b})               // a wins 2:1
	tr.EraseBlockAttrib(1, []Origin{a, b, a, b})            // tie -> lowest id (a)
	tr.EraseBlockAttrib(2, nil)                             // empty -> os
	tr.EraseBlockAttrib(3, []Origin{b, b, b, a, Origin(0)}) // b wins

	snap := tr.Ledger().Snapshot()
	rows := map[string]Row{}
	for _, r := range snap.Rows {
		rows[r.Origin] = r
	}
	if got := rows["a"].Erases; got != 2 {
		t.Errorf("a erases = %d, want 2", got)
	}
	if got := rows["b"].Erases; got != 1 {
		t.Errorf("b erases = %d, want 1", got)
	}
	if got := rows["os"].Erases; got != 1 {
		t.Errorf("os erases = %d, want 1", got)
	}
	if tot := snap.Totals().Erases; tot != 4 {
		t.Errorf("total erases = %d, want exactly one per call", tot)
	}
	if got := rows["a"].ErasePages; got != 2+2+1 {
		t.Errorf("a erase_pages = %d, want 5", got)
	}
	if got := rows["b"].ErasePages; got != 1+2+3 {
		t.Errorf("b erase_pages = %d, want 6", got)
	}
	if got := rows["os"].ErasePages; got != 1 {
		t.Errorf("os erase_pages = %d, want 1", got)
	}
}

func TestSetOriginNests(t *testing.T) {
	tr := New()
	a, b := tr.Origin("a"), tr.Origin("b")
	if prev := tr.SetOrigin(a); prev != OriginOS {
		t.Fatalf("prev = %d, want os", prev)
	}
	if prev := tr.SetOrigin(b); prev != a {
		t.Fatalf("prev = %d, want %d", prev, a)
	}
	tr.SetOrigin(a)
	if tr.Current() != a {
		t.Fatal("nested restore broken")
	}
}

func TestSnapshotAlgebra(t *testing.T) {
	tr := New()
	tr.SetPageSize(4096)
	a := tr.Origin("a")
	tr.SetOrigin(a)
	for i := 0; i < 3; i++ {
		tr.NoteHostPage()
		tr.NoteProgram(a, CauseHost)
	}
	tr.NoteProgram(a, CauseGC)
	s1 := tr.Ledger().Snapshot()
	if got := s1.Totals().PhysPages; got != 4 {
		t.Fatalf("phys pages = %d, want 4", got)
	}
	if got := s1.Totals().PhysBytes; got != 4*4096 {
		t.Fatalf("phys bytes = %d", got)
	}

	s1.Scale(3)
	if got := s1.Totals().PhysPages; got != 12 {
		t.Fatalf("scaled phys pages = %d, want 12", got)
	}

	// Merge a snapshot with one shared and one new origin.
	tr2 := New()
	tr2.SetPageSize(4096)
	x := tr2.Origin("a")
	y := tr2.Origin("zz")
	tr2.NoteProgram(x, CauseHost)
	tr2.NoteProgram(y, CauseWL)
	s2 := tr2.Ledger().Snapshot()

	merged := Snapshot{}
	merged.Merge(s1)
	merged.Merge(s2)
	if merged.PageSize != 4096 {
		t.Fatalf("merged page size = %d", merged.PageSize)
	}
	rows := map[string]Row{}
	for _, r := range merged.Rows {
		rows[r.Origin] = r
	}
	if got := rows["a"].HostPrograms; got != 9+1 {
		t.Errorf("merged a host programs = %d, want 10", got)
	}
	if got := rows["zz"].WLPrograms; got != 1 {
		t.Errorf("merged zz wl programs = %d, want 1", got)
	}
	// Rows stay sorted by name.
	for i := 1; i < len(merged.Rows); i++ {
		if merged.Rows[i-1].Origin >= merged.Rows[i].Origin {
			t.Fatalf("rows unsorted: %q before %q", merged.Rows[i-1].Origin, merged.Rows[i].Origin)
		}
	}
	// Merging different page sizes poisons PageSize to 0.
	odd := Snapshot{PageSize: 512, Rows: []Row{{Origin: "a"}}}
	merged.Merge(odd)
	if merged.PageSize != 0 {
		t.Fatalf("mixed-geometry merge kept page size %d", merged.PageSize)
	}

	if top := s1.Top(); top != "a" {
		t.Fatalf("Top = %q", top)
	}
	var empty Snapshot
	if top := empty.Top(); top != "" {
		t.Fatalf("empty Top = %q", top)
	}
}

// TestWriteCSVTotals renders a ledger and re-sums the origin rows against
// the TOTAL row — the same check cmd/wtracecheck applies to CLI output.
func TestWriteCSVTotals(t *testing.T) {
	tr := New()
	tr.SetPageSize(4096)
	a, b := tr.Origin("a"), tr.Origin("b")
	tr.SetOrigin(a)
	tr.NoteHostPage()
	tr.NoteProgram(a, CauseHost)
	tr.NoteProgram(b, CauseGC)
	tr.EraseBlockAttrib(0, []Origin{a, b, b})

	var buf bytes.Buffer
	if err := tr.Ledger().Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3+1 { // header, os/a/b, TOTAL
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if lines[0] != strings.TrimSpace(csvHeader) {
		t.Fatalf("header = %q", lines[0])
	}
	nCols := len(strings.Split(lines[0], ","))
	sums := make([]int64, nCols-2) // integer columns between origin and write_amp
	var total []string
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != nCols {
			t.Fatalf("row %q has %d fields, want %d", line, len(fields), nCols)
		}
		if fields[0] == "TOTAL" {
			total = fields
			continue
		}
		for i := range sums {
			var v int64
			fmt.Sscan(fields[i+1], &v)
			sums[i] += v
		}
	}
	if total == nil {
		t.Fatal("no TOTAL row")
	}
	for i, want := range sums {
		var got int64
		fmt.Sscan(total[i+1], &got)
		if got != want {
			t.Fatalf("TOTAL column %d = %d, rows sum to %d", i+1, got, want)
		}
	}

	buf.Reset()
	if err := tr.Ledger().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		PageSize int64 `json:"page_size"`
		Rows     []Row `json:"rows"`
		Total    Row   `json:"total"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output invalid: %v", err)
	}
	if doc.PageSize != 4096 || len(doc.Rows) != 3 || doc.Total.Origin != "TOTAL" {
		t.Fatalf("JSON doc = %+v", doc)
	}
}

func TestWriteLabeledCSV(t *testing.T) {
	tr := New()
	a := tr.Origin("a")
	tr.NoteProgram(a, CauseHost)
	snap := tr.Ledger().Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteLabeledCSV(&buf, "run1", true); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteLabeledCSV(&buf, "run2", false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3+3 { // header + (os,a,TOTAL) x 2
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "label,origin,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "run1,") || !strings.HasPrefix(lines[4], "run2,") {
		t.Fatalf("labels wrong:\n%s", buf.String())
	}
}

// TestChromeExport checks the trace file is standard JSON with the
// expected processes, thread metadata, and event phases.
func TestChromeExport(t *testing.T) {
	tr := New()
	tr.Now = func() time.Duration { return 42 * time.Microsecond }
	tr.EnableEvents(16)
	a := tr.Origin("camera")
	tr.SetOrigin(a)
	tr.EventHostWrite(4096, 8192, time.Millisecond, 10*time.Microsecond)
	tr.EventRelocate(CauseGC, 3, 12)
	tr.EventRelocate(CauseWL, 4, 7)
	tr.EraseBlockAttrib(5, []Origin{a})

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Process("dev0")); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	counts := map[string]int{}
	var procNamed, hostThread bool
	for _, ev := range doc.TraceEvents {
		counts[ev.Name]++
		if ev.Name == "process_name" && ev.Ph == "M" {
			procNamed = true
			if ev.Args["name"] != "dev0" {
				t.Errorf("process_name = %v", ev.Args["name"])
			}
		}
		if ev.Name == "thread_name" && ev.Ph == "M" && ev.Args["name"] == "host:camera" {
			hostThread = true
		}
	}
	if !procNamed || !hostThread {
		t.Fatalf("metadata missing (process=%v hostThread=%v):\n%s", procNamed, hostThread, buf.String())
	}
	if counts["write"] != 1 || counts["gc.relocate"] != 1 || counts["wl.migrate"] != 1 || counts["erase"] != 1 {
		t.Fatalf("event counts = %v", counts)
	}
}

func TestEventCapDrops(t *testing.T) {
	tr := New()
	tr.EnableEvents(2)
	for i := 0; i < 5; i++ {
		tr.EventRelocate(CauseGC, i, 1)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Process("dev")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("dropped")) {
		t.Fatal("dropped events not surfaced in the trace")
	}
}

func TestAttachTelemetry(t *testing.T) {
	tr := New()
	reg := telemetry.NewRegistry()
	tr.Attach(reg)
	a := tr.Origin("a")
	tr.NoteProgram(a, CauseHost)
	tr.NoteProgram(a, CauseGC)
	tr.EraseBlockAttrib(0, []Origin{a})
	snap := reg.Snapshot(0)
	check := func(name string, want int64) {
		t.Helper()
		i := snap.Index(name)
		if i < 0 {
			t.Fatalf("%s not registered", name)
		}
		if got := snap.Points[i].Int; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check("wtrace.origins", 2)
	check("wtrace.phys_pages", 2)
	check("wtrace.erases", 1)
	check("wtrace.events", 0)
	check("wtrace.events_dropped", 0)
}

// TestConcurrentLedger is the -race half of the concurrency contract
// (DESIGN.md §9): one shared Ledger, many goroutines registering origins,
// counting through their own Tracers, and snapshotting — all at once. The
// final snapshot must account every emission exactly.
func TestConcurrentLedger(t *testing.T) {
	led := NewLedger()
	led.SetPageSize(4096)
	const (
		workers = 8
		perW    = 2000
	)
	var workersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot reader: must never see torn state (the -race
	// detector and the row invariant below are the assertions).
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := led.Snapshot()
			for _, r := range snap.Rows {
				if r.PhysPages != r.HostPrograms+r.GCPrograms+r.WLPrograms+r.CachePrograms {
					t.Errorf("torn snapshot row: %+v", r)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			tr := NewWithLedger(led) // tracer per goroutine, ledger shared
			mine := tr.Origin(fmt.Sprintf("app.%d", w))
			shared := tr.Origin("shared") // every worker races to register this
			tr.SetOrigin(mine)
			for i := 0; i < perW; i++ {
				tr.NoteHostPage()
				tr.NoteProgram(mine, CauseHost)
				tr.NoteProgram(shared, CauseGC)
				if i%100 == 0 {
					tr.EraseBlockAttrib(i, []Origin{mine, mine, shared})
				}
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	readerWG.Wait()

	snap := led.Snapshot()
	rows := map[string]Row{}
	for _, r := range snap.Rows {
		rows[r.Origin] = r
	}
	for w := 0; w < workers; w++ {
		r := rows[fmt.Sprintf("app.%d", w)]
		if r.HostPages != perW || r.HostPrograms != perW {
			t.Errorf("worker %d: host pages %d, host programs %d, want %d", w, r.HostPages, r.HostPrograms, perW)
		}
		if r.Erases != perW/100 {
			t.Errorf("worker %d: erases %d, want %d", w, r.Erases, perW/100)
		}
	}
	if r := rows["shared"]; r.GCPrograms != workers*perW {
		t.Errorf("shared gc programs = %d, want %d", r.GCPrograms, workers*perW)
	}
	if tot := snap.Totals().Erases; tot != workers*(perW/100) {
		t.Errorf("total erases = %d, want %d", tot, workers*(perW/100))
	}
}
