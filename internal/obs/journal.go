package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Event is one entry of a campaign's journal. Two kinds share the record:
//
//   - ops events (Sim false): lifecycle and progress — submitted, paused,
//     resumed, forked, cell_reused, cell_computed, checkpoint_written,
//     epoch_committed, done, failed. Their presence, order, and count
//     depend on scheduling and process history, and that is fine: they
//     describe this process, not the simulation.
//   - sim events (Sim true): alerts and brick milestones. Their payload
//     (Type, Day, Rule, Value, Detail) is a pure function of the
//     campaign's sim-domain day series, so across shards, workers,
//     checkpoint cadence, and resume the set of sim events is identical
//     (the determinism tests compare them via SimString, which strips the
//     ops envelope).
//
// Seq and WallMs are the ops envelope on every event: Seq is assigned by
// the journal (contiguous from 1, never reused, survives crash/resume)
// and WallMs stamps append time.
type Event struct {
	Seq    uint64 `json:"seq"`
	WallMs int64  `json:"wall_ms"`
	Type   string `json:"type"`
	// Sim marks the payload as sim-domain (deterministic).
	Sim bool `json:"sim,omitempty"`
	// Day is the 1-based simulated day the event refers to (0 = none).
	Day int `json:"day,omitempty"`
	// Shard and Epoch locate cell-scoped ops events; Shard is 0-based and
	// only meaningful when Epoch (1-based) is set.
	Shard int `json:"shard,omitempty"`
	Epoch int `json:"epoch,omitempty"`
	// Rule names the alert or milestone rule that fired.
	Rule string `json:"rule,omitempty"`
	// Value is the rule's reading, rendered as an exact integer ratio
	// ("3/1000") so sim events never carry float formatting.
	Value  string `json:"value,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// SimKey identifies a sim event for cross-resume dedup: the same rule
// firing for the same day must journal exactly once per campaign, no
// matter how many sweeps re-derive it.
func (e Event) SimKey() string {
	return fmt.Sprintf("%s|%s|%d", e.Type, e.Rule, e.Day)
}

// SimString is the canonical ops-envelope-free rendering determinism
// fingerprints compare.
func (e Event) SimString() string {
	return fmt.Sprintf("%s day=%d rule=%s value=%s detail=%s", e.Type, e.Day, e.Rule, e.Value, e.Detail)
}

// Journal is an append-only, monotonically-sequenced event log with
// subscriber fan-out. With a path it persists as JSON lines (one fsync
// per append — events are epoch-cadence, not device-cadence) and reloads
// on open, tolerating a torn final line from a crash mid-append; without
// a path it is memory-only. All methods are safe for concurrent use.
type Journal struct {
	// Logger, when set (before first use), mirrors every append as a
	// structured log line tagged Tag.
	Logger *Logger
	Tag    string

	mu      sync.Mutex
	f       *os.File // nil when memory-only
	events  []Event
	subs    []*subscriber
	nextSeq uint64
}

type subscriber struct {
	ch chan Event
}

// OpenJournal opens (or creates) the journal at path, replaying existing
// events; an empty path makes a memory-only journal. A torn final line —
// the signature of a crash mid-append — is truncated away, so the next
// append continues the contiguous sequence; a gap or duplicate in the
// replayed sequence numbers is corruption and fails the open.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{}
	if path == "" {
		return j, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	good := int64(0) // offset past the last fully-parsed line
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			break // no trailing newline: torn tail, drop it
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		var e Event
		if json.Unmarshal(bytes.TrimSpace(line), &e) != nil {
			break // torn or garbled tail: keep the good prefix
		}
		if e.Seq != j.nextSeq+1 {
			f.Close()
			return nil, fmt.Errorf("obs: journal %s: seq %d after %d, want contiguous", path, e.Seq, j.nextSeq)
		}
		j.events = append(j.events, e)
		j.nextSeq = e.Seq
		good += int64(len(line))
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

// Append assigns the next sequence number and wall timestamp, persists
// the event (when file-backed), fans it out to subscribers, and returns
// the completed event.
func (j *Journal) Append(e Event) (Event, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextSeq++
	e.Seq = j.nextSeq
	e.WallMs = WallNow().UnixMilli()
	if j.f != nil {
		raw, err := json.Marshal(e)
		if err != nil {
			return Event{}, err
		}
		if _, err := j.f.Write(append(raw, '\n')); err != nil {
			return Event{}, fmt.Errorf("obs: journal append: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return Event{}, fmt.Errorf("obs: journal sync: %w", err)
		}
	}
	j.events = append(j.events, e)
	live := j.subs[:0]
	for _, s := range j.subs {
		select {
		case s.ch <- e:
			live = append(live, s)
		default:
			// Slow subscriber: close it out rather than block the
			// campaign; the client reconnects with ?since=.
			close(s.ch)
		}
	}
	j.subs = live
	j.Logger.Log("journal", "campaign", j.Tag, "seq", e.Seq, "type", e.Type, "detail", e.Detail)
	return e, nil
}

// Events returns a copy of every event with Seq > since.
func (j *Journal) Events(since uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinceLocked(since)
}

func (j *Journal) sinceLocked(since uint64) []Event {
	i := 0
	for i < len(j.events) && j.events[i].Seq <= since {
		i++
	}
	return append([]Event(nil), j.events[i:]...)
}

// LastSeq returns the highest assigned sequence number (0 when empty).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Subscribe returns the replay of events after since plus a channel of
// future ones. The channel is closed if the subscriber falls more than a
// buffer behind; cancel unsubscribes (idempotent).
func (j *Journal) Subscribe(since uint64) (replay []Event, ch <-chan Event, cancel func()) {
	s := &subscriber{ch: make(chan Event, 256)}
	j.mu.Lock()
	replay = j.sinceLocked(since)
	j.subs = append(j.subs, s)
	j.mu.Unlock()
	var once sync.Once
	return replay, s.ch, func() {
		once.Do(func() {
			j.mu.Lock()
			for i, sub := range j.subs {
				if sub == s {
					j.subs = append(j.subs[:i], j.subs[i+1:]...)
					break
				}
			}
			j.mu.Unlock()
		})
	}
}

// Close releases the backing file (memory contents stay queryable).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
