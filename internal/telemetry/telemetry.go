// Package telemetry is the measurement substrate for the whole stack: a
// dependency-free metrics registry (counters, gauges, histograms) with
// named, labeled instruments and cheap atomic updates, plus a Sampler
// (sampler.go) that snapshots the registry on a fixed simclock cadence
// into an in-memory time series rendered as CSV or JSON.
//
// Design rules, in the spirit of Flashmon's in-kernel counters:
//
//   - Updates on hot paths are a single atomic add — no locks, no
//     allocation, no map lookups. Name resolution happens once, at
//     registration.
//   - Pull instruments (CounterFunc, GaugeFunc) read existing layer state
//     at snapshot time, so layers that already keep Stats structs pay
//     nothing between samples.
//   - Instrument callbacks MUST be pure observers: reading a metric must
//     never mutate simulation state (no RNG draws, no cache refreshes),
//     or sampled runs would diverge from unsampled ones. See DESIGN.md §7.
//
// Instruments are named "layer.metric" in lowercase with optional
// canonical labels, e.g. "nand.programs{chip=main}". Snapshot order is
// registration order, so any series built from one registry has a stable
// column layout.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flashwear/internal/report"
)

// Kind distinguishes monotonic counts from point-in-time levels.
type Kind uint8

const (
	// KindCounter is a monotonically non-decreasing integer count.
	KindCounter Kind = iota + 1
	// KindGauge is an instantaneous floating-point level.
	KindGauge
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a push-updated monotonic count. The zero value is ready to
// use; Inc/Add are a single atomic add, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a push-updated level, stored as atomic float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a push-updated distribution over a fixed-geometry
// report.Histogram. Snapshots expand it into derived points
// (.count, .mean, .p50, .p99) rather than dumping every bucket.
type Histogram struct {
	mu sync.Mutex
	h  *report.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram.
func (h *Histogram) Snapshot() *report.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	cp := *h.h
	cp.Counts = append([]int64(nil), h.h.Counts...)
	return &cp
}

// instrument is one registered metric source.
type instrument struct {
	name      string
	kind      Kind
	counter   *Counter
	counterFn func() int64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// Registry holds named instruments. Registration is not on any hot path
// and panics on invalid or duplicate names (programming errors, like a
// malformed histogram geometry). Updates to registered Counters/Gauges
// are concurrency-safe; registration and Snapshot take the registry lock.
type Registry struct {
	mu    sync.Mutex
	insts []instrument
	index map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Name builds a canonical instrument name: base plus sorted key=value
// labels, e.g. Name("nand.programs", "chip", "main") ==
// "nand.programs{chip=main}". It panics on an odd label count.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: Name(%q): odd label count %d", base, len(labels)))
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+"="+labels[i+1])
	}
	sort.Strings(pairs)
	return base + "{" + strings.Join(pairs, ",") + "}"
}

// validName accepts "layer.metric" spellings — lowercase letters, digits,
// dots and underscores — with an optional trailing {k=v,...} label block.
func validName(name string) bool {
	base, labeled := name, false
	var labels string
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return false
		}
		base, labels, labeled = name[:i], name[i+1:len(name)-1], true
	}
	if base == "" {
		return false
	}
	for _, r := range base {
		if !(r == '.' || r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
			return false
		}
	}
	if !labeled {
		return true
	}
	if labels == "" {
		return false
	}
	for _, kv := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return false
		}
	}
	return true
}

func (r *Registry) register(inst instrument) {
	if !validName(inst.name) {
		panic(fmt.Sprintf("telemetry: invalid instrument name %q", inst.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.index[inst.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate instrument %q", inst.name))
	}
	r.index[inst.name] = len(r.insts)
	r.insts = append(r.insts, inst)
}

// Counter registers and returns a push-updated counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.register(instrument{name: name, kind: KindCounter, counter: c})
	return c
}

// CounterFunc registers a pull counter: fn is called at snapshot time and
// must be a pure observer of simulation state.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.register(instrument{name: name, kind: KindCounter, counterFn: fn})
}

// Gauge registers and returns a push-updated gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.register(instrument{name: name, kind: KindGauge, gauge: g})
	return g
}

// GaugeFunc registers a pull gauge: fn is called at snapshot time and
// must be a pure observer of simulation state.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.register(instrument{name: name, kind: KindGauge, gaugeFn: fn})
}

// Histogram registers a push-updated distribution with the given bucket
// geometry (see report.NewHistogram).
func (r *Registry) Histogram(name string, min, max float64, buckets int) *Histogram {
	h := &Histogram{h: report.NewHistogram(min, max, buckets)}
	r.register(instrument{name: name, kind: KindGauge, hist: h})
	return h
}

// Point is one sampled value. Counters carry Int, gauges carry Float.
type Point struct {
	Name  string
	Kind  Kind
	Int   int64
	Float float64
}

// Value returns the point as a float64 regardless of kind.
func (p Point) Value() float64 {
	if p.Kind == KindCounter {
		return float64(p.Int)
	}
	return p.Float
}

// Snapshot is the registry's state at one instant of simulated time.
// Points appear in registration order; histograms expand into derived
// points (name.count, name.mean, name.p50, name.p99).
type Snapshot struct {
	At     time.Duration
	Points []Point
}

// Index returns the position of name in Points, or -1.
func (s Snapshot) Index(name string) int {
	for i, p := range s.Points {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Snapshot reads every instrument. Pull callbacks run under the registry
// lock; they must not re-enter the registry.
func (r *Registry) Snapshot(at time.Duration) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	pts := make([]Point, 0, len(r.insts)+3*countHists(r.insts))
	for _, in := range r.insts {
		switch {
		case in.counter != nil:
			pts = append(pts, Point{Name: in.name, Kind: KindCounter, Int: in.counter.Value()})
		case in.counterFn != nil:
			pts = append(pts, Point{Name: in.name, Kind: KindCounter, Int: in.counterFn()})
		case in.gauge != nil:
			pts = append(pts, Point{Name: in.name, Kind: KindGauge, Float: in.gauge.Value()})
		case in.gaugeFn != nil:
			pts = append(pts, Point{Name: in.name, Kind: KindGauge, Float: in.gaugeFn()})
		case in.hist != nil:
			pts = append(pts, histPoints(in.name, in.hist)...)
		}
	}
	return Snapshot{At: at, Points: pts}
}

func countHists(insts []instrument) int {
	n := 0
	for _, in := range insts {
		if in.hist != nil {
			n++
		}
	}
	return n
}

// histPoints derives the summary points of one histogram. An empty
// histogram reports zeroes (report.Histogram.Percentile already returns 0
// on empty; the mean is guarded here because it is NaN on empty).
func histPoints(name string, h *Histogram) []Point {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := h.h.Total()
	mean := 0.0
	if total > 0 {
		mean = h.h.Mean()
	}
	return []Point{
		{Name: name + ".count", Kind: KindCounter, Int: total},
		{Name: name + ".mean", Kind: KindGauge, Float: mean},
		{Name: name + ".p50", Kind: KindGauge, Float: h.h.Percentile(0.50)},
		{Name: name + ".p99", Kind: KindGauge, Float: h.h.Percentile(0.99)},
	}
}
