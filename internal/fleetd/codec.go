package fleetd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"flashwear/internal/ftl"
	"flashwear/internal/nand"
	"flashwear/internal/report"
	"flashwear/internal/wtrace"
)

// Checkpoint files fail in three distinguishable ways, and the service
// treats them differently: a version mismatch is an operator problem
// (old binary, new file — refuse loudly), a truncated file is the normal
// signature of a crash mid-write (silently recompute the cell), and a
// corrupt file (bad CRC, bad magic, malformed frame) means the storage
// under the service is lying (refuse loudly). No error path ever
// restores a partial state.
var (
	// ErrCheckpointVersion reports a checkpoint written by an
	// incompatible codec version.
	ErrCheckpointVersion = errors.New("fleetd: checkpoint version mismatch")
	// ErrCheckpointTruncated reports a checkpoint cut short — a missing
	// end marker or a frame that runs past end of file.
	ErrCheckpointTruncated = errors.New("fleetd: checkpoint truncated")
	// ErrCheckpointCorrupt reports a structurally damaged checkpoint:
	// bad magic, CRC mismatch, or a malformed frame payload.
	ErrCheckpointCorrupt = errors.New("fleetd: checkpoint corrupt")
)

// ckptVersion is the codec version stamped after the file magic. Bump on
// any layout change; old files then fail with ErrCheckpointVersion
// instead of decoding garbage.
const ckptVersion = 1

// fileMagic opens every checkpoint file; endMagic closes a complete one.
// A file without endMagic is a crash artifact by definition.
const (
	fileMagic = "FWFLTCKP"
	endMagic  = "FWCKDONE"
)

// Frame types. Every frame is [1B type][4B length][payload][4B CRC32].
const (
	frameHeader byte = 1
	frameDevice byte = 2
	frameFooter byte = 3
)

// fileHeader identifies the (campaign, shard, epoch) cell a checkpoint
// belongs to; resume refuses files whose identity doesn't match the
// campaign asking for them.
type fileHeader struct {
	Seed    int64
	Devices int
	Days    int
	Shard   int
	Epoch   int
	DevLo   int
	DevHi   int
	DayLo   int
	DayHi   int
}

// epochFooter is the aggregate trailer of one (shard, epoch) cell — the
// only part of a checkpoint the fleet-level merge needs. Rows/Wear are
// the epoch's day series including frozen dead-device contributions;
// FrozenRows/FrozenWear and Agg are the cumulative carry the next epoch
// seeds from; Final (present only in the horizon's last epoch) adds the
// survivors to Agg; Ledger is the point-in-time fleet ledger (dead plus
// live), for mid-run queries.
type epochFooter struct {
	Shard      int
	Epoch      int
	DayLo      int
	DayHi      int
	Live       int
	Rows       [][]int64
	Wear       []report.Sketch
	FrozenRows []int64
	FrozenWear report.Sketch
	Agg        *Aggregate
	Final      *Aggregate
	Ledger     wtrace.Snapshot
}

// enc builds a frame payload. All integers are little-endian and
// fixed-width: the format trades compactness for a codec whose output is
// byte-identical for equal states — re-encoding a decoded state must
// reproduce the input exactly (pinned by tests), which rules out anything
// order- or history-dependent.
type enc struct{ b []byte }

// The primitives below are simtaint root sinks: every byte of a
// checkpoint must be a pure function of the campaign Spec, or resumed
// runs diverge from fresh ones. i32 and bool inherit the sink property
// transitively through u32/u8, so they carry no directive of their own.

//flashvet:sim-sink checkpoint frame bytes
func (e *enc) u8(v byte) { e.b = append(e.b, v) }

//flashvet:sim-sink checkpoint frame bytes
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }

//flashvet:sim-sink checkpoint frame bytes
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

func (e *enc) i32(v int32) { e.u32(uint32(v)) }

//flashvet:sim-sink checkpoint frame bytes
func (e *enc) i64(v int64) { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }

//flashvet:sim-sink checkpoint frame bytes
func (e *enc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

//flashvet:sim-sink checkpoint frame bytes
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

//flashvet:sim-sink checkpoint frame bytes
func (e *enc) raw(p []byte) { e.b = append(e.b, p...) }

// dec consumes a frame payload. Overruns latch bad instead of panicking;
// the caller checks done() once at the end, and any inconsistency maps to
// ErrCheckpointCorrupt (the CRC already passed, so a malformed payload
// means a codec mismatch, not bit rot — still not restorable).
type dec struct {
	b   []byte
	off int
	bad bool
}

func (d *dec) take(n int) []byte {
	if d.bad || n < 0 || d.off+n > len(d.b) {
		d.bad = true
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) u8() byte {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u16() uint16 {
	p := d.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *dec) i32() int32 { return int32(d.u32()) }

func (d *dec) i64() int64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(p))
}

func (d *dec) f64() float64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p))
}

func (d *dec) bool() bool { return d.u8() != 0 }

// count reads a u32 length and sanity-caps it against the bytes left, so
// a garbage length cannot drive a giant allocation.
func (d *dec) count(perItem int) int {
	n := int(d.u32())
	if perItem > 0 && n > len(d.b)-d.off {
		d.bad = true
		return 0
	}
	return n
}

func (d *dec) str() string {
	n := d.count(1)
	return string(d.take(n))
}

// done reports whether the payload decoded cleanly and completely.
func (d *dec) done() error {
	if d.bad {
		return fmt.Errorf("%w: malformed frame payload", ErrCheckpointCorrupt)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes in frame payload", ErrCheckpointCorrupt, len(d.b)-d.off)
	}
	return nil
}

// ---- sub-codecs ----

func (e *enc) fileHeader(h fileHeader) {
	e.i64(h.Seed)
	for _, v := range []int{h.Devices, h.Days, h.Shard, h.Epoch, h.DevLo, h.DevHi, h.DayLo, h.DayHi} {
		e.i64(int64(v))
	}
}

func (d *dec) fileHeader() fileHeader {
	var h fileHeader
	h.Seed = d.i64()
	for _, p := range []*int{&h.Devices, &h.Days, &h.Shard, &h.Epoch, &h.DevLo, &h.DevHi, &h.DayLo, &h.DayHi} {
		*p = int(d.i64())
	}
	return h
}

func (e *enc) geometry(g nand.Geometry) {
	for _, v := range []int{g.Dies, g.PlanesPerDie, g.BlocksPerPlane, g.PagesPerBlock, g.PageSize, g.SpareSize} {
		e.i64(int64(v))
	}
}

func (d *dec) geometry() nand.Geometry {
	var g nand.Geometry
	for _, p := range []*int{&g.Dies, &g.PlanesPerDie, &g.BlocksPerPlane, &g.PagesPerBlock, &g.PageSize, &g.SpareSize} {
		*p = int(d.i64())
	}
	return g
}

// geometrySane caps a decoded geometry against resource exhaustion: a
// frame that passes its CRC can still carry a hostile or drifted
// geometry, and the chip-state decode allocates PageSize bytes per
// zero-marked page before done() gets a chance to reject the frame. The
// caps sit far above any simulated chip, so a genuine state never trips
// them.
func geometrySane(g nand.Geometry) bool {
	return g.Dies > 0 && g.Dies <= 1<<10 &&
		g.PlanesPerDie > 0 && g.PlanesPerDie <= 1<<10 &&
		g.BlocksPerPlane > 0 && g.BlocksPerPlane <= 1<<20 &&
		g.PagesPerBlock > 0 && g.PagesPerBlock <= 1<<16 &&
		g.PageSize > 0 && g.PageSize <= 1<<20 &&
		g.SpareSize >= 0 && g.SpareSize <= 1<<16
}

func (e *enc) nandStats(s nand.Stats) {
	e.i64(s.Programs)
	e.i64(s.Reads)
	e.i64(s.Erases)
	e.i64(s.ProgramFails)
	e.i64(s.EraseFails)
	e.i64(s.UncorrectableReads)
	e.i64(s.BytesProgrammed)
	e.i64(int64(s.BadBlocks))
}

func (d *dec) nandStats() nand.Stats {
	var s nand.Stats
	s.Programs = d.i64()
	s.Reads = d.i64()
	s.Erases = d.i64()
	s.ProgramFails = d.i64()
	s.EraseFails = d.i64()
	s.UncorrectableReads = d.i64()
	s.BytesProgrammed = d.i64()
	s.BadBlocks = int(d.i64())
	return s
}

// isZeroPage reports an all-zero payload — the common case for this
// repo's rewrite workloads, which write zero-filled buffers. Elided pages
// cost one flag byte instead of PageSize.
func isZeroPage(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

func (e *enc) chipState(st *nand.ChipState) {
	e.geometry(st.Geometry)
	e.nandStats(st.Stats)
	e.u32(uint32(len(st.Blocks)))
	for i := range st.Blocks {
		b := &st.Blocks[i]
		e.i64(int64(b.EraseCount))
		e.f64(b.Healed)
		e.f64(b.Stress)
		e.bool(b.Bad)
		e.i64(int64(b.NextPage))
		e.i64(int64(b.FirstProg))
		e.i64(int64(b.LastErase))
		e.i64(b.Reads)
		e.bool(b.Meta != nil)
		if b.Meta != nil {
			e.u32(uint32(len(b.Meta)))
			for _, m := range b.Meta {
				e.i32(m.LP)
				e.i64(m.Seq)
				e.u16(m.Org)
			}
		}
		// Page payloads in sorted page order: map iteration order must
		// never leak into the bytes.
		pages := make([]int, 0, len(b.Data))
		for pg := range b.Data {
			pages = append(pages, pg)
		}
		sort.Ints(pages)
		e.u32(uint32(len(pages)))
		for _, pg := range pages {
			e.u32(uint32(pg))
			data := b.Data[pg]
			if isZeroPage(data) {
				e.bool(true)
			} else {
				e.bool(false)
				e.raw(data)
			}
		}
	}
}

func (d *dec) chipState() *nand.ChipState {
	st := &nand.ChipState{Geometry: d.geometry(), Stats: d.nandStats()}
	g := st.Geometry
	if d.bad || !geometrySane(g) {
		d.bad = true
		return st
	}
	nb := d.count(8)
	if nb > g.Dies*g.PlanesPerDie*g.BlocksPerPlane {
		d.bad = true
		return st
	}
	// All zero-marked pages share one all-zero slice: the zero-page flag
	// costs one input byte but claims PageSize bytes, and a hostile frame
	// could otherwise multiply a small payload into an arbitrarily large
	// allocation. Safe to alias — the decoded state is read-only to every
	// consumer (ImportState deep-copies it in, the encoder only reads it).
	var zero []byte
	st.Blocks = make([]nand.BlockState, nb)
	for i := 0; i < nb && !d.bad; i++ {
		b := &st.Blocks[i]
		b.EraseCount = int(d.i64())
		b.Healed = d.f64()
		b.Stress = d.f64()
		b.Bad = d.bool()
		b.NextPage = int(d.i64())
		b.FirstProg = time.Duration(d.i64())
		b.LastErase = time.Duration(d.i64())
		b.Reads = d.i64()
		if d.bool() {
			nm := d.count(14)
			if nm > g.PagesPerBlock {
				d.bad = true
				return st
			}
			b.Meta = make([]nand.OOB, nm)
			for j := 0; j < nm && !d.bad; j++ {
				b.Meta[j].LP = d.i32()
				b.Meta[j].Seq = d.i64()
				b.Meta[j].Org = d.u16()
			}
		}
		np := d.count(5)
		if np > g.PagesPerBlock {
			d.bad = true
			return st
		}
		if np > 0 {
			b.Data = make(map[int][]byte, np)
		}
		for j := 0; j < np && !d.bad; j++ {
			pg := int(d.u32())
			if pg < 0 || pg >= g.PagesPerBlock {
				d.bad = true
				return st
			}
			if d.bool() {
				if zero == nil {
					zero = make([]byte, g.PageSize)
				}
				b.Data[pg] = zero
			} else {
				b.Data[pg] = append([]byte(nil), d.take(g.PageSize)...)
			}
		}
	}
	return st
}

func (e *enc) sketch(s report.Sketch) {
	e.u32(uint32(len(s.Counts)))
	e.i64(s.Under)
	e.i64(s.Over)
	for _, c := range s.Counts {
		e.i64(c)
	}
}

func (d *dec) sketch() report.Sketch {
	n := d.count(8)
	s := report.Sketch{Counts: make([]int64, n)}
	s.Under = d.i64()
	s.Over = d.i64()
	for i := range s.Counts {
		s.Counts[i] = d.i64()
	}
	return s
}

func (e *enc) histogram(h *report.Histogram) {
	e.f64(h.Min)
	e.f64(h.Max)
	e.sketch(h.Sketch)
}

func (d *dec) histogram() *report.Histogram {
	h := &report.Histogram{}
	h.Min = d.f64()
	h.Max = d.f64()
	h.Sketch = d.sketch()
	return h
}

func (e *enc) snapshot(s wtrace.Snapshot) {
	e.i64(s.PageSize)
	e.u32(uint32(len(s.Rows)))
	for _, r := range s.Rows {
		e.str(r.Origin)
		for _, v := range []int64{r.HostPages, r.HostBytes, r.HostPrograms, r.GCPrograms,
			r.WLPrograms, r.CachePrograms, r.PhysPages, r.PhysBytes, r.Erases, r.ErasePages} {
			e.i64(v)
		}
	}
}

func (d *dec) snapshot() wtrace.Snapshot {
	var s wtrace.Snapshot
	s.PageSize = d.i64()
	n := d.count(8)
	if n > 0 {
		s.Rows = make([]wtrace.Row, n)
	}
	for i := 0; i < n && !d.bad; i++ {
		r := &s.Rows[i]
		r.Origin = d.str()
		for _, p := range []*int64{&r.HostPages, &r.HostBytes, &r.HostPrograms, &r.GCPrograms,
			&r.WLPrograms, &r.CachePrograms, &r.PhysPages, &r.PhysBytes, &r.Erases, &r.ErasePages} {
			*p = d.i64()
		}
	}
	return s
}

func (e *enc) group(g Group) {
	e.i64(g.Devices)
	e.i64(g.Bricked)
	e.i64(g.ReadOnly)
	e.i64(g.HostMiB)
	e.i64(g.BrickDayMilli)
}

func (d *dec) group() Group {
	var g Group
	g.Devices = d.i64()
	g.Bricked = d.i64()
	g.ReadOnly = d.i64()
	g.HostMiB = d.i64()
	g.BrickDayMilli = d.i64()
	return g
}

func (e *enc) namedGroups(gs []NamedGroup) {
	e.u32(uint32(len(gs)))
	for _, g := range gs {
		e.str(g.Name)
		e.group(g.Group)
	}
}

func (d *dec) namedGroups() []NamedGroup {
	n := d.count(5)
	var gs []NamedGroup
	for i := 0; i < n && !d.bad; i++ {
		gs = append(gs, NamedGroup{Name: d.str(), Group: d.group()})
	}
	return gs
}

func (e *enc) aggregate(a *Aggregate) {
	e.group(a.Total)
	e.namedGroups(a.ByProfile)
	e.namedGroups(a.ByClass)
	e.histogram(a.TimeToBrick)
	e.histogram(a.DeathGiB)
	e.histogram(a.SurvivorWear)
	e.histogram(a.WriteAmp)
	e.snapshot(a.Ledger)
}

func (d *dec) aggregate() *Aggregate {
	a := &Aggregate{}
	a.Total = d.group()
	a.ByProfile = d.namedGroups()
	a.ByClass = d.namedGroups()
	a.TimeToBrick = d.histogram()
	a.DeathGiB = d.histogram()
	a.SurvivorWear = d.histogram()
	a.WriteAmp = d.histogram()
	a.Ledger = d.snapshot()
	return a
}

func (e *enc) footer(ft *epochFooter) {
	e.i64(int64(ft.Shard))
	e.i64(int64(ft.Epoch))
	e.i64(int64(ft.DayLo))
	e.i64(int64(ft.DayHi))
	e.i64(int64(ft.Live))
	e.u32(uint32(len(ft.Rows)))
	e.u32(dayCols)
	for _, r := range ft.Rows {
		for _, v := range r {
			e.i64(v)
		}
	}
	for _, s := range ft.Wear {
		e.sketch(s)
	}
	for _, v := range ft.FrozenRows {
		e.i64(v)
	}
	e.sketch(ft.FrozenWear)
	e.aggregate(ft.Agg)
	e.bool(ft.Final != nil)
	if ft.Final != nil {
		e.aggregate(ft.Final)
	}
	e.snapshot(ft.Ledger)
}

func (d *dec) footer() *epochFooter {
	ft := &epochFooter{}
	ft.Shard = int(d.i64())
	ft.Epoch = int(d.i64())
	ft.DayLo = int(d.i64())
	ft.DayHi = int(d.i64())
	ft.Live = int(d.i64())
	rows := d.count(8)
	if cols := d.u32(); cols != dayCols {
		d.bad = true
		return ft
	}
	ft.Rows = make([][]int64, rows)
	for i := range ft.Rows {
		r := make([]int64, dayCols)
		for j := range r {
			r[j] = d.i64()
		}
		ft.Rows[i] = r
	}
	ft.Wear = make([]report.Sketch, rows)
	for i := range ft.Wear {
		ft.Wear[i] = d.sketch()
	}
	ft.FrozenRows = make([]int64, dayCols)
	for j := range ft.FrozenRows {
		ft.FrozenRows[j] = d.i64()
	}
	ft.FrozenWear = d.sketch()
	ft.Agg = d.aggregate()
	if d.bool() {
		ft.Final = d.aggregate()
	}
	ft.Ledger = d.snapshot()
	return ft
}

func (e *enc) ftlStats(s ftl.Stats) {
	for _, v := range []int64{s.HostPagesWritten, s.HostPagesRead, s.HostBytesWritten,
		s.GCCopies, s.DrainMigrations, s.CacheAbsorbed, s.CacheBypassed,
		s.LostPages, s.MergeEvents, s.ReadRetries, s.ProgramRetries, s.Recoveries} {
		e.i64(v)
	}
}

func (d *dec) ftlStats() ftl.Stats {
	var s ftl.Stats
	for _, p := range []*int64{&s.HostPagesWritten, &s.HostPagesRead, &s.HostBytesWritten,
		&s.GCCopies, &s.DrainMigrations, &s.CacheAbsorbed, &s.CacheBypassed,
		&s.LostPages, &s.MergeEvents, &s.ReadRetries, &s.ProgramRetries, &s.Recoveries} {
		*p = d.i64()
	}
	return s
}

func (e *enc) deviceState(st *deviceState) {
	e.i64(int64(st.Index))
	e.i64(int64(st.DaysDone))
	e.i64(int64(st.Now))
	e.i64(int64(st.WorkStart))
	e.i64(st.BytesWritten)
	e.i64(st.BytesRead)
	e.i64(int64(st.Busy))
	e.i64(int64(st.FSWrites))
	e.ftlStats(st.FTLStats)
	e.i64(st.GCCopies)
	e.snapshot(st.Ledger)
	e.chipState(st.Main)
	e.bool(st.Cache != nil)
	if st.Cache != nil {
		e.chipState(st.Cache)
	}
}

func (d *dec) deviceState() *deviceState {
	st := &deviceState{}
	st.Index = int(d.i64())
	st.DaysDone = int(d.i64())
	st.Now = time.Duration(d.i64())
	st.WorkStart = time.Duration(d.i64())
	st.BytesWritten = d.i64()
	st.BytesRead = d.i64()
	st.Busy = time.Duration(d.i64())
	st.FSWrites = int(d.i64())
	st.FTLStats = d.ftlStats()
	st.GCCopies = d.i64()
	st.Ledger = d.snapshot()
	st.Main = d.chipState()
	if d.bool() {
		st.Cache = d.chipState()
	}
	return st
}
