// Package a exercises the globalrand analyzer: the process-global
// math/rand source and hard-coded seeds are banned; injected seeded
// *rand.Rand values are the sanctioned idiom.
package a

import "math/rand"

func draw(r *rand.Rand) int {
	n := rand.Intn(6)                   // want `global rand\.Intn`
	rand.Shuffle(n, func(i, j int) {})  // want `global rand\.Shuffle`
	_ = rand.Float64()                  // want `global rand\.Float64`
	return n + r.Intn(6) + r.Perm(3)[0] // ok: injected source
}

func fixedSeed() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `hard-coded seed in rand\.NewSource`
}

func derivedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x9e3779b9)) // ok: seed flows from the caller
}

func waived() *rand.Rand {
	//flashvet:ignore globalrand fixture corpus must be identical for every caller
	return rand.New(rand.NewSource(77))
}
