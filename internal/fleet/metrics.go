package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"flashwear/internal/telemetry"
)

// Column layout of one MetricsSeries row. Every column is an integer sum
// over devices — full-scale (capacity scaling multiplied back) and, for the
// wear/error gauges, fixed-point — so that merging per-worker series is
// exactly associative and commutative, like the rest of the Accumulator.
// Derived floating-point columns (write amplification, population means)
// are computed only at render time, from identical integer sums, so the CSV
// is byte-identical across worker counts.
const (
	// mDevices counts contributing devices (constant down the series:
	// bricked devices freeze at their final snapshot, they do not drop out).
	mDevices = iota
	// mBricked counts devices dead at this instant.
	mBricked
	// mHostBytes is full-scale host data absorbed.
	mHostBytes
	// mFlashBytes is full-scale data physically programmed into NAND
	// (main + cache chips); mFlashBytes/mHostBytes is the population WA.
	mFlashBytes
	// mFlashErases is full-scale block erases (main + cache).
	mFlashErases
	// mBadBlocks is full-scale blocks retired (main + cache).
	mBadBlocks
	// mWearAvgMicro sums per-device average wear in micro-units (x1e6);
	// divide by mDevices for the population mean.
	mWearAvgMicro
	// mWearMaxMicro sums per-device maximum wear in micro-units; divide by
	// mDevices for the mean per-device hottest block.
	mWearMaxMicro
	// mRawBERFemto sums per-device expected raw bit error rate in
	// femto-units (x1e15).
	mRawBERFemto
	// mWearLevel sums per-device JEDEC Type B wear-indicator levels.
	mWearLevel

	metricCols
)

// MetricsSeries is the population wear trajectory: row k holds the
// integer-additive sums of every device's state at age (k+1)*Every.
type MetricsSeries struct {
	// Every is the full-scale sampling cadence.
	Every time.Duration
	// Rows is the series; each row has metricCols entries.
	Rows [][]int64
}

// metricRowCount is the fixed series length: one row per whole sampling
// interval within the horizon. Every device contributes exactly this many
// rows (early deaths pad with their frozen final snapshot), so merging
// never mixes rows from different ages.
func metricRowCount(spec Spec) int {
	horizon := time.Duration(spec.Days * 24 * float64(time.Hour))
	return int(horizon / spec.MetricsEvery)
}

func newMetricsSeries(spec Spec) *MetricsSeries {
	n := metricRowCount(spec)
	m := &MetricsSeries{Every: spec.MetricsEvery, Rows: make([][]int64, n)}
	for i := range m.Rows {
		m.Rows[i] = make([]int64, metricCols)
	}
	return m
}

// addDevice folds one device's padded row set into the series.
func (m *MetricsSeries) addDevice(rows [][]int64) {
	if len(rows) != len(m.Rows) {
		panic(fmt.Sprintf("fleet: device contributed %d metric rows, series has %d", len(rows), len(m.Rows)))
	}
	for i, r := range rows {
		for j, v := range r {
			m.Rows[i][j] += v
		}
	}
}

//flashvet:sim-sink fleet metrics series
func (m *MetricsSeries) merge(o *MetricsSeries) error {
	if o == nil {
		return nil
	}
	if m.Every != o.Every || len(m.Rows) != len(o.Rows) {
		return fmt.Errorf("fleet: merging mismatched metric series (%v/%d vs %v/%d)",
			m.Every, len(m.Rows), o.Every, len(o.Rows))
	}
	for i, r := range o.Rows {
		for j, v := range r {
			m.Rows[i][j] += v
		}
	}
	return nil
}

// WriteCSV renders the series with derived per-day population columns:
//
//	day, devices, bricked, host_gib, write_amp, wear_avg, wear_max,
//	raw_ber, wear_level, bad_blocks, flash_erases
//
// wear_avg/wear_max/raw_ber/wear_level are means over the population
// (wear_max is the mean of per-device hottest-block wear — a true
// population max would not merge additively). All floats derive from the
// series' integer sums, so output is byte-identical across worker counts.
func (m *MetricsSeries) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("day,devices,bricked,host_gib,write_amp,wear_avg,wear_max,raw_ber,wear_level,bad_blocks,flash_erases\n"); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for k, r := range m.Rows {
		devices := r[mDevices]
		ratio := func(numer int64, scale float64) float64 {
			if devices == 0 {
				return 0
			}
			return float64(numer) / scale / float64(devices)
		}
		wa := 0.0
		if r[mHostBytes] > 0 {
			wa = float64(r[mFlashBytes]) / float64(r[mHostBytes])
		}
		day := time.Duration(k+1) * m.Every
		cols := []string{
			f(day.Hours() / 24),
			strconv.FormatInt(devices, 10),
			strconv.FormatInt(r[mBricked], 10),
			f(float64(r[mHostBytes]) / (1 << 30)),
			f(wa),
			f(ratio(r[mWearAvgMicro], 1e6)),
			f(ratio(r[mWearMaxMicro], 1e6)),
			f(ratio(r[mRawBERFemto], 1e15)),
			f(ratio(r[mWearLevel], 1)),
			strconv.FormatInt(r[mBadBlocks], 10),
			strconv.FormatInt(r[mFlashErases], 10),
		}
		for i, c := range cols {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(c); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMetricsCSV renders the run's population time series, or fails if the
// Spec did not enable metrics (MetricsEvery == 0).
func (r *Result) WriteMetricsCSV(w io.Writer) error {
	if r.Metrics == nil {
		return errors.New("fleet: run had no metrics (set Spec.MetricsEvery)")
	}
	return r.Metrics.WriteCSV(w)
}

// metricCollector samples one device's registry on the scaled cadence and
// converts each snapshot into one full-scale integer row.
type metricCollector struct {
	reg *telemetry.Registry
	eff int64

	rows     [][]int64
	resolved bool
	src      struct {
		hostBytes, bricked, wearLevel     int
		mainBytes, mainErases, mainBad    int
		mainAvg, mainMax, mainBER         int
		cacheBytes, cacheErases, cacheBad int // -1 without a cache chip
	}
}

func newMetricCollector(reg *telemetry.Registry, eff int64) *metricCollector {
	return &metricCollector{reg: reg, eff: eff}
}

func (c *metricCollector) observe(s telemetry.Snapshot) {
	c.rows = append(c.rows, c.row(s))
}

// resolve caches snapshot point indices; registration order is fixed at
// device birth, so one resolution serves the whole run.
func (c *metricCollector) resolve(s telemetry.Snapshot) {
	must := func(name string) int {
		i := s.Index(name)
		if i < 0 {
			panic(fmt.Sprintf("fleet: instrument %q missing from device registry", name))
		}
		return i
	}
	c.src.hostBytes = must("device.bytes_written")
	// "Failed" covers both hard bricks and read-only EOL retirement, the
	// same definition the aggregate's Bricked counter uses.
	c.src.bricked = must("device.failed")
	c.src.wearLevel = must(telemetry.Name("device.wear_level", "pool", "b"))
	c.src.mainBytes = must(telemetry.Name("nand.bytes_programmed", "chip", "main"))
	c.src.mainErases = must(telemetry.Name("nand.erases", "chip", "main"))
	c.src.mainBad = must(telemetry.Name("nand.bad_blocks", "chip", "main"))
	c.src.mainAvg = must(telemetry.Name("nand.avg_wear", "chip", "main"))
	c.src.mainMax = must(telemetry.Name("nand.max_wear", "chip", "main"))
	c.src.mainBER = must(telemetry.Name("nand.raw_ber", "chip", "main"))
	c.src.cacheBytes = s.Index(telemetry.Name("nand.bytes_programmed", "chip", "cache"))
	c.src.cacheErases = s.Index(telemetry.Name("nand.erases", "chip", "cache"))
	c.src.cacheBad = s.Index(telemetry.Name("nand.bad_blocks", "chip", "cache"))
	c.resolved = true
}

func (c *metricCollector) row(s telemetry.Snapshot) []int64 {
	if !c.resolved {
		c.resolve(s)
	}
	pt := s.Points
	row := make([]int64, metricCols)
	row[mDevices] = 1
	if pt[c.src.bricked].Float != 0 {
		row[mBricked] = 1
	}
	row[mHostBytes] = pt[c.src.hostBytes].Int * c.eff
	flashBytes := pt[c.src.mainBytes].Int
	erases := pt[c.src.mainErases].Int
	bad := pt[c.src.mainBad].Int
	if c.src.cacheBytes >= 0 {
		flashBytes += pt[c.src.cacheBytes].Int
		erases += pt[c.src.cacheErases].Int
		bad += pt[c.src.cacheBad].Int
	}
	row[mFlashBytes] = flashBytes * c.eff
	row[mFlashErases] = erases * c.eff
	row[mBadBlocks] = bad * c.eff
	row[mWearAvgMicro] = fixedPoint(pt[c.src.mainAvg].Float, 1e6)
	row[mWearMaxMicro] = fixedPoint(pt[c.src.mainMax].Float, 1e6)
	row[mRawBERFemto] = fixedPoint(pt[c.src.mainBER].Float, 1e15)
	row[mWearLevel] = int64(pt[c.src.wearLevel].Float)
	return row
}

// fixedPoint converts a gauge to integer fixed point, mapping the
// non-finite values a fully-dead chip can report to zero.
func fixedPoint(v float64, scale float64) int64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return int64(math.Round(v * scale))
}

// finish pads (or truncates) the collected rows to exactly n: a device
// that bricked early freezes at its final snapshot for the remaining
// intervals; a survivor that overshot the horizon by part of a step is
// clipped back to it.
func (c *metricCollector) finish(n int, at time.Duration) [][]int64 {
	rows := c.rows
	if len(rows) > n {
		rows = rows[:n]
	}
	if len(rows) < n {
		final := c.row(c.reg.Snapshot(at))
		for len(rows) < n {
			rows = append(rows, final)
		}
	}
	return rows
}
