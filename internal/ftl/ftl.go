package ftl

import (
	"errors"
	"fmt"

	"flashwear/internal/nand"
	"flashwear/internal/wtrace"
)

// Errors surfaced to the host.
var (
	// ErrBricked means the device has failed permanently: it can no longer
	// service writes. This is the terminal state the paper drives phones
	// into.
	ErrBricked = errors.New("ftl: device is bricked")
	// ErrRange is returned for out-of-range logical pages.
	ErrRange = errors.New("ftl: logical page out of range")
	// ErrUnreadable is returned when a read hits an uncorrectable error.
	ErrUnreadable = errors.New("ftl: uncorrectable read")
	// ErrReadOnly means endurance is exhausted and the device has retired
	// into JEDEC-style read-only mode: writes, trims, and sanitize are
	// refused, but reads (and flushes) still succeed. This is the graceful
	// sibling of ErrBricked — how a well-behaved eMMC part ends its life.
	ErrReadOnly = errors.New("ftl: device is read-only (end of life)")
	// ErrPowerLoss means power dropped mid-operation. All volatile FTL
	// state is gone; the host must run Recover before issuing I/O.
	ErrPowerLoss = errors.New("ftl: power lost")
)

// Cost accumulates the raw flash work an operation caused. The device layer
// converts it to service time using the chip timings and the controller's
// internal parallelism.
type Cost struct {
	Programs int
	Reads    int
	Erases   int
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.Programs += o.Programs
	c.Reads += o.Reads
	c.Erases += o.Erases
}

// Stats summarises FTL activity since creation.
type Stats struct {
	HostPagesWritten int64
	HostPagesRead    int64
	HostBytesWritten int64
	GCCopies         int64 // pages moved by main-pool garbage collection
	DrainMigrations  int64 // pages migrated cache -> main
	CacheAbsorbed    int64 // host pages absorbed by the cache pool
	CacheBypassed    int64 // small host pages that bypassed a full cache
	LostPages        int64 // pages lost to uncorrectable errors during GC
	MergeEvents      int64 // times the pools entered merged mode
	ReadRetries      int64 // extra reads issued after uncorrectable results
	ProgramRetries   int64 // pages re-programmed after program failures
	Recoveries       int64 // successful power-loss recoveries (remounts)
}

// FTL is a page-mapped flash translation layer over one or two NAND chips.
// It is not safe for concurrent use.
type FTL struct {
	cfg       Config
	main      *gcPool
	cache     *cachePool
	cacheChip *nand.Chip

	pageSize     int
	logicalPages int
	userBlocks   int

	l2p          []loc
	validLogical int64

	drainDebt float64
	merged    bool
	bricked   bool
	readOnly  bool
	powerLost bool

	// gseq is the global program sequence number stamped into per-page OOB
	// metadata; the live copy of a logical page is always the one with the
	// highest sequence, which is what power-loss recovery relies on.
	gseq int64

	// Fragmentation is O(blocks) to compute, so it is cached and
	// refreshed periodically.
	fragCached    float64
	fragCountdown int

	stats Stats

	// tr is the optional wear-attribution tracer (nil when tracing is
	// off, which must cost nothing but nil checks on the write path).
	tr *wtrace.Tracer
}

// New builds an FTL (and its chips) from cfg.
func New(cfg Config) (*FTL, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mainChip, err := nand.New(cfg.MainChip)
	if err != nil {
		return nil, fmt.Errorf("ftl: main chip: %w", err)
	}
	f := &FTL{cfg: cfg, pageSize: mainChip.Geometry().PageSize}

	userBlocks := int(float64(mainChip.Geometry().Blocks()) * (1 - cfg.OverProvision))
	if userBlocks < 1 {
		return nil, fmt.Errorf("ftl: geometry too small: %d user blocks", userBlocks)
	}
	f.userBlocks = userBlocks
	f.logicalPages = userBlocks * mainChip.Geometry().PagesPerBlock
	f.l2p = make([]loc, f.logicalPages)
	for i := range f.l2p {
		f.l2p[i] = noLoc
	}
	f.main = newGCPool(PoolB, mainChip, &cfg, f.remap)
	f.main.gseq = &f.gseq
	f.main.stats = &f.stats
	f.main.readRetries = retries(cfg.ReadRetries)

	if cfg.Hybrid != nil {
		cacheChip, err := nand.New(cfg.Hybrid.CacheChip)
		if err != nil {
			return nil, fmt.Errorf("ftl: cache chip: %w", err)
		}
		if cacheChip.Geometry().PageSize != f.pageSize {
			return nil, fmt.Errorf("ftl: cache page size %d != main page size %d",
				cacheChip.Geometry().PageSize, f.pageSize)
		}
		f.cacheChip = cacheChip
		f.cache = newCachePool(cacheChip)
		f.cache.gseq = &f.gseq
		f.cache.stats = &f.stats
		f.cache.readRetries = retries(cfg.ReadRetries)
	}
	return f, nil
}

// SetTracer attaches (or, with nil, detaches) the wear-attribution
// tracer. It must be called before any I/O: the per-page origin arrays
// start empty, so wear already on the chips would be attributed to
// origin 0. Attribution state lives beside the reverse map and follows
// the same lifecycle (cleared on erase, rebuilt by Recover from OOB).
func (f *FTL) SetTracer(tr *wtrace.Tracer) {
	f.tr = tr
	f.main.tr = tr
	if tr == nil {
		f.main.orgs = nil
		if f.cache != nil {
			f.cache.tr = nil
			f.cache.orgs = nil
		}
		return
	}
	tr.SetPageSize(f.pageSize)
	f.main.orgs = make([]wtrace.Origin, len(f.main.rmap))
	if f.cache != nil {
		f.cache.tr = tr
		f.cache.orgs = make([]wtrace.Origin, len(f.cache.rmap))
	}
}

// Tracer returns the attached wear-attribution tracer, or nil.
func (f *FTL) Tracer() *wtrace.Tracer { return f.tr }

// origin returns the ambient origin for a host write — who the current
// request is attributed to.
func (f *FTL) origin() wtrace.Origin {
	if f.tr == nil {
		return wtrace.OriginOS
	}
	return f.tr.Current()
}

// retries maps the Config.ReadRetries encoding (-1 = off) to a count.
func retries(cfg int) int {
	if cfg < 0 {
		return 0
	}
	return cfg
}

// remap records a relocation decided inside a pool (GC, wear-leveling).
// l == noLoc means the page's data was lost to an uncorrectable error.
func (f *FTL) remap(lp int32, l loc) {
	if l == noLoc {
		if f.l2p[lp] != noLoc {
			f.l2p[lp] = noLoc
			f.validLogical--
			f.stats.LostPages++
		}
		return
	}
	f.l2p[lp] = l
}

// PageSize returns the logical page size in bytes.
func (f *FTL) PageSize() int { return f.pageSize }

// LogicalPages returns the number of exported logical pages.
func (f *FTL) LogicalPages() int { return f.logicalPages }

// Capacity returns the exported capacity in bytes.
func (f *FTL) Capacity() int64 { return int64(f.logicalPages) * int64(f.pageSize) }

// Utilisation returns the fraction of logical pages currently mapped.
func (f *FTL) Utilisation() float64 {
	return float64(f.validLogical) / float64(f.logicalPages)
}

// Bricked reports whether the device has failed permanently.
func (f *FTL) Bricked() bool { return f.bricked }

// ReadOnly reports whether the device has retired into read-only EOL mode.
func (f *FTL) ReadOnly() bool { return f.readOnly }

// Failed reports whether the device can no longer accept writes — either
// the graceful read-only retirement or the hard brick.
func (f *FTL) Failed() bool { return f.bricked || f.readOnly }

// PowerLost reports whether the FTL saw power drop; Recover clears it.
func (f *FTL) PowerLost() bool { return f.powerLost }

// enterEOL handles space exhaustion: graceful read-only retirement by
// default, the legacy hard brick when the profile asks for it (the paper's
// BLU phones). cause is the allocation failure that triggered it.
func (f *FTL) enterEOL(cause error) error {
	if f.cfg.BrickAtEOL {
		f.bricked = true
		return fmt.Errorf("%w: %v", ErrBricked, cause)
	}
	f.readOnly = true
	return fmt.Errorf("%w: %v", ErrReadOnly, cause)
}

// notePowerLoss latches the power-lost state and converts a chip-level
// power-loss error into the host-facing one.
func (f *FTL) notePowerLoss(cause error) error {
	f.powerLost = true
	return fmt.Errorf("%w: %w", ErrPowerLoss, cause)
}

// spareLow reports whether the proactive EOL threshold has been crossed.
func (f *FTL) spareLow() bool {
	n := f.cfg.EOLSpareBlocks
	return n > 0 && f.main.goodBlocks()-f.userBlocks < n
}

// Merged reports whether the hybrid pools are operating as one (§4.3).
func (f *FTL) Merged() bool { return f.merged }

// Stats returns a snapshot of FTL counters.
func (f *FTL) Stats() Stats { return f.stats }

// RestoreStats overwrites the cumulative activity counters with s and the
// main pool's GC-copy counter with gcCopies — the checkpoint-resume
// counterpart to Recover, which rebuilds mapping state from the chips but
// cannot know how much host traffic the previous process had served.
// Restore before the post-import Recover call, so counters like
// Recoveries keep accumulating on top of the restored values.
func (f *FTL) RestoreStats(s Stats, gcCopies int64) {
	f.stats = s
	f.main.gcCopies = gcCopies
}

// MainChip exposes the Type B chip for wear inspection.
func (f *FTL) MainChip() *nand.Chip { return f.main.chip }

// CacheChip exposes the Type A chip, or nil for single-pool devices.
func (f *FTL) CacheChip() *nand.Chip { return f.cacheChip }

// WriteAmplification returns total flash programs divided by host pages
// written, the metric §4.3 discusses under "Advanced Factors".
func (f *FTL) WriteAmplification() float64 {
	if f.stats.HostPagesWritten == 0 {
		return 0
	}
	progs := f.main.chip.Stats().Programs
	if f.cacheChip != nil {
		progs += f.cacheChip.Stats().Programs
	}
	return float64(progs) / float64(f.stats.HostPagesWritten)
}

// firmwareRated returns the rated-PE denominator the life-time indicator
// uses for a chip.
func (f *FTL) firmwareRated(chip *nand.Chip) float64 {
	if f.cfg.FirmwareRatedPE > 0 {
		return float64(f.cfg.FirmwareRatedPE)
	}
	return float64(chip.RatedPE())
}

// lifeConsumed returns the fraction of estimated lifetime consumed for a
// chip, as its firmware would estimate it from average erase counts.
func (f *FTL) lifeConsumed(chip *nand.Chip) float64 {
	var sum float64
	g := chip.Geometry()
	n := 0
	for b := 0; b < g.Blocks(); b++ {
		sum += float64(chip.EraseCount(b))
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n) / f.firmwareRated(chip)
}

// WearIndicator returns the JEDEC-style 11-level life-time estimate for a
// pool: value n means (n-1)*10%..n*10% of estimated lifetime consumed; 11
// means the device exceeded its estimated lifetime (§4.3). Pool A on a
// single-pool device reports 1 (not used).
func (f *FTL) WearIndicator(pool PoolID) int {
	var chip *nand.Chip
	switch pool {
	case PoolA:
		if f.cacheChip == nil {
			return 1
		}
		chip = f.cacheChip
	default:
		chip = f.main.chip
	}
	lvl := int(f.lifeConsumed(chip)*10) + 1
	if lvl < 1 {
		lvl = 1
	}
	if lvl > 11 {
		lvl = 11
	}
	return lvl
}

// LifeConsumed returns the raw consumed-lifetime fraction for a pool.
func (f *FTL) LifeConsumed(pool PoolID) float64 {
	if pool == PoolA {
		if f.cacheChip == nil {
			return 0
		}
		return f.lifeConsumed(f.cacheChip)
	}
	return f.lifeConsumed(f.main.chip)
}

// PreEOLInfo mirrors the JEDEC PRE_EOL_INFO register: 1 = normal, 2 =
// warning (80% of reserved blocks consumed or life estimate past 80%),
// 3 = urgent.
func (f *FTL) PreEOLInfo() int {
	life := f.lifeConsumed(f.main.chip)
	switch {
	case f.bricked || f.readOnly || life >= 0.9:
		return 3
	case life >= 0.8:
		return 2
	default:
		return 1
	}
}

func (f *FTL) checkRange(lp int) error {
	if lp < 0 || lp >= f.logicalPages {
		return fmt.Errorf("%w: page %d of %d", ErrRange, lp, f.logicalPages)
	}
	return nil
}

// WritePage writes one logical page. data may be nil for accounting-only
// writes. reqBytes is the size of the host request this page belongs to,
// which drives hybrid routing (small requests go through the cache).
func (f *FTL) WritePage(lp int, data []byte, reqBytes int) (Cost, error) {
	var cost Cost
	switch {
	case f.bricked:
		return cost, ErrBricked
	case f.readOnly:
		return cost, ErrReadOnly
	case f.powerLost:
		return cost, ErrPowerLoss
	}
	if err := f.checkRange(lp); err != nil {
		return cost, err
	}
	if data != nil && len(data) != f.pageSize {
		return cost, fmt.Errorf("ftl: WritePage: payload %d bytes, want %d", len(data), f.pageSize)
	}
	f.stats.HostPagesWritten++
	f.stats.HostBytesWritten += int64(f.pageSize)
	org := f.origin()
	if f.tr != nil {
		f.tr.NoteHostPage()
	}

	var newLoc loc
	var err error
	if f.cache != nil && f.cache.alive() && reqBytes <= f.cfg.Hybrid.RouteMaxBytes {
		newLoc, err = f.writeViaCache(lp, data, &cost, org)
	} else {
		newLoc, err = f.main.program(int32(lp), data, &cost, false, streamHost, org, wtrace.CauseHost)
	}
	if err != nil {
		switch {
		case errors.Is(err, nand.ErrPowerLoss):
			return cost, f.notePowerLoss(err)
		case errors.Is(err, ErrNoSpace):
			return cost, f.enterEOL(err)
		}
		return cost, err
	}

	// Invalidate the previous copy *after* programming: GC during the
	// program may already have moved it, so consult the live map.
	if old := f.l2p[lp]; old != noLoc {
		f.invalidateLoc(old)
	} else {
		f.validLogical++
	}
	f.l2p[lp] = newLoc
	f.main.maybeStaticWL(&cost)
	if f.spareLow() {
		// Proactive retirement: the write that consumed the spare margin
		// still succeeded; the *next* one sees ErrReadOnly.
		f.readOnly = true
	}
	return cost, nil
}

// Fragmentation returns the fraction of *live data* that co-resides with
// dead pages — the "fragmented" half of §4.3's merge condition. Writes into
// free space leave the bulk of stored data in clean blocks (low value);
// rewrites aimed at the utilised space punch holes into those blocks and
// push the value toward 1. The value is cached and refreshed every few
// thousand writes.
func (f *FTL) Fragmentation() float64 {
	if f.fragCountdown > 0 {
		f.fragCountdown--
		return f.fragCached
	}
	f.fragCountdown = 2048
	var validTotal, validInDirty int64
	for b, s := range f.main.state {
		if s != sFull {
			continue
		}
		v := int64(f.main.valid[b])
		validTotal += v
		if f.main.fill[b] > f.main.valid[b] {
			validInDirty += v // block holds dead (superseded) pages
		}
	}
	if validTotal == 0 {
		f.fragCached = 0
	} else {
		f.fragCached = float64(validInDirty) / float64(validTotal)
	}
	return f.fragCached
}

// writeViaCache routes a small write through the Type A pool, applying the
// drain policy and — at high utilisation and fragmentation — the
// merged-pool behaviour.
func (f *FTL) writeViaCache(lp int, data []byte, cost *Cost, org wtrace.Origin) (loc, error) {
	h := f.cfg.Hybrid
	wasMerged := f.merged
	f.merged = f.Utilisation() >= h.MergeUtilisation &&
		f.Fragmentation() >= h.MergeFragmentation
	if f.merged && !wasMerged {
		f.stats.MergeEvents++
	}

	if f.merged {
		// Merged mode: the cache absorbs all routed writes, draining as
		// hard as needed to make room (the firmware has combined the
		// pools into one storage space).
		for !f.cache.hasFreeSlot() && f.cache.content() {
			if err := f.drainOne(cost); err != nil {
				return noLoc, err
			}
		}
		if f.cache.hasFreeSlot() {
			l, err := f.cache.program(int32(lp), data, cost, org)
			if err == nil {
				f.stats.CacheAbsorbed++
				return l, nil
			}
			if !errors.Is(err, ErrNoSpace) {
				return noLoc, err
			}
			// Program-failure retries can eat the cache's last slots
			// mid-write; a full cache is a routing condition, not device
			// EOL — fall through to the main pool.
		}
		f.stats.CacheBypassed++
		return f.main.program(int32(lp), data, cost, false, streamHost, org, wtrace.CauseHost)
	}

	// Unmerged: background drain proceeds at the migration budget; the
	// cache absorbs the write only if it has room, else the write
	// bypasses straight to the main pool.
	if f.cache.utilisation() > h.DrainWatermark {
		f.drainDebt += h.DrainRatio
		for f.drainDebt >= 1 && f.cache.content() {
			f.drainDebt--
			if err := f.drainOne(cost); err != nil {
				return noLoc, err
			}
		}
	}
	if f.cache.hasFreeSlot() {
		l, err := f.cache.program(int32(lp), data, cost, org)
		if err == nil {
			f.stats.CacheAbsorbed++
			return l, nil
		}
		if !errors.Is(err, ErrNoSpace) {
			return noLoc, err
		}
		// See the merged path: a cache exhausted by program-failure
		// retries bypasses rather than ending the device's life.
	}
	f.stats.CacheBypassed++
	return f.main.program(int32(lp), data, cost, false, streamHost, org, wtrace.CauseHost)
}

// drainOne advances the cache drain by one page, migrating it into the main
// pool if it is still live.
func (f *FTL) drainOne(cost *Cost) error {
	lp, data, org, err := f.cache.drainOne(cost)
	if err != nil {
		if errors.Is(err, nand.ErrPowerLoss) {
			return f.notePowerLoss(err)
		}
		return err
	}
	switch {
	case lp == -1:
		return nil // dead or empty slot: reclaimed for free
	case lp == -2:
		return nil // data lost; cache already dropped it
	}
	// Live page: move to main, still owned by the origin that wrote it
	// into the cache — the drain migration is that origin's amplification.
	nl, err := f.main.program(lp, data, cost, false, streamHost, org, wtrace.CauseCache)
	if err != nil {
		switch {
		case errors.Is(err, nand.ErrPowerLoss):
			return f.notePowerLoss(err)
		case errors.Is(err, ErrNoSpace):
			return f.enterEOL(fmt.Errorf("during cache drain: %v", err))
		}
		return err
	}
	old := f.l2p[lp]
	if old != noLoc && old.pool() == PoolA {
		f.cache.invalidate(old)
	}
	f.l2p[lp] = nl
	f.stats.DrainMigrations++
	return nil
}

// invalidateLoc drops a physical page in whichever pool holds it.
func (f *FTL) invalidateLoc(l loc) {
	if l.pool() == PoolA && f.cache != nil {
		f.cache.invalidate(l)
		return
	}
	f.main.invalidate(l)
}

// ReadPage reads one logical page. Unmapped pages read as nil data with no
// flash work (the device returns zeroes). Accounting-only pages return nil
// data too.
func (f *FTL) ReadPage(lp int) ([]byte, Cost, error) {
	var cost Cost
	if f.powerLost {
		return nil, cost, ErrPowerLoss
	}
	if err := f.checkRange(lp); err != nil {
		return nil, cost, err
	}
	f.stats.HostPagesRead++
	l := f.l2p[lp]
	if l == noLoc {
		return nil, cost, nil
	}
	var data []byte
	var err error
	if l.pool() == PoolA && f.cache != nil {
		data, err = f.cache.read(l, &cost)
	} else {
		data, err = f.main.read(l, &cost)
	}
	if err != nil {
		if errors.Is(err, nand.ErrPowerLoss) {
			return nil, cost, f.notePowerLoss(err)
		}
		return nil, cost, fmt.Errorf("%w: page %d: %v", ErrUnreadable, lp, err)
	}
	return data, cost, nil
}

// TrimPage discards a logical page (like an SD/eMMC discard or FS trim).
func (f *FTL) TrimPage(lp int) (Cost, error) {
	var cost Cost
	switch {
	case f.readOnly:
		return cost, ErrReadOnly
	case f.powerLost:
		return cost, ErrPowerLoss
	}
	if err := f.checkRange(lp); err != nil {
		return cost, err
	}
	if l := f.l2p[lp]; l != noLoc {
		f.invalidateLoc(l)
		f.l2p[lp] = noLoc
		f.validLogical--
	}
	return cost, nil
}

// Flush is a barrier; the simulated FTL has no volatile write cache, so it
// only reports zero cost. A read-only EOL device still acknowledges
// flushes (there is nothing buffered to lose), a bricked one does not.
func (f *FTL) Flush() (Cost, error) {
	if f.bricked {
		return Cost{}, ErrBricked
	}
	if f.powerLost {
		return Cost{}, ErrPowerLoss
	}
	return Cost{}, nil
}

// GCCopies returns the number of pages copied by main-pool GC (for write
// amplification breakdowns).
func (f *FTL) GCCopies() int64 { return f.main.gcCopies }

// Sanitize is the factory-reset path: every mapping is dropped and every
// good block erased. Crucially — and this is the paper's point about
// permanently-consumable resources — sanitising costs one more P/E cycle
// per block and restores exactly none of the consumed lifetime.
func (f *FTL) Sanitize() (Cost, error) {
	var cost Cost
	switch {
	case f.bricked:
		return cost, ErrBricked
	case f.readOnly:
		return cost, ErrReadOnly
	case f.powerLost:
		return cost, ErrPowerLoss
	}
	for lp := range f.l2p {
		if f.l2p[lp] != noLoc {
			f.invalidateLoc(f.l2p[lp])
			f.l2p[lp] = noLoc
		}
	}
	f.validLogical = 0
	// Reset pool structures by erasing everything that is not bad.
	p := f.main
	for st := range p.openBlk {
		p.closeStream(st)
	}
	p.free = p.free[:0]
	for b := range p.state {
		if p.state[b] == sBad {
			continue
		}
		p.state[b] = sFull // eraseToFree expects a non-free block
		p.eraseToFree(b, &cost)
		if p.lostPower {
			return cost, f.notePowerLoss(nand.ErrPowerLoss)
		}
	}
	if f.cache != nil && f.cache.alive() {
		for f.cache.content() {
			if _, _, _, err := f.cache.drainOne(&cost); err != nil {
				if errors.Is(err, nand.ErrPowerLoss) {
					return cost, f.notePowerLoss(err)
				}
				return cost, err
			}
		}
	}
	if p.freeCount() == 0 {
		f.bricked = true
		return cost, fmt.Errorf("%w: sanitize retired the last blocks", ErrBricked)
	}
	return cost, nil
}
