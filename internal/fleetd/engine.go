package fleetd

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/faultinject"
	"flashwear/internal/fleet"
	"flashwear/internal/fs"
	"flashwear/internal/fs/extfs"
	"flashwear/internal/ftl"
	"flashwear/internal/nand"
	"flashwear/internal/report"
	"flashwear/internal/simclock"
	"flashwear/internal/workload"
	"flashwear/internal/wtrace"
)

// deviceState is one device's complete persistent state at a simulated
// day boundary — everything a checkpoint must carry to reboot the device
// into an indistinguishable stack. Volatile state (FTL mapping tables,
// pool free lists, file-system caches) is deliberately absent: the boot
// path rebuilds it through the same OOB-scan recovery a power loss takes,
// which is what makes the capture small and the restore honest.
type deviceState struct {
	Index    int
	DaysDone int
	// Now is the device's simulated clock at capture; WorkStart is the
	// clock after first-boot setup, the zero point of the day grid.
	Now       time.Duration
	WorkStart time.Duration
	// Cumulative host-side counters (the fresh stack must keep reporting
	// lifetime totals).
	BytesWritten int64
	BytesRead    int64
	Busy         time.Duration
	// FSWrites is the workload's cumulative rewrite count (its SyncEvery
	// phase).
	FSWrites int
	// FTL cumulative counters. GCCopies rides separately because the FTL
	// tracks it next to the pool, not in Stats.
	FTLStats ftl.Stats
	GCCopies int64
	// Ledger is the cumulative unscaled wear-attribution snapshot across
	// all previous boots (zero-valued when tracing is off). Scaling to
	// full-scale volumes happens only at fold points.
	Ledger wtrace.Snapshot
	// Main and Cache are the chips' persistent states; Cache is nil for
	// devices without an SLC cache chip.
	Main  *nand.ChipState
	Cache *nand.ChipState
}

// liveDev is a booted device stack: the transient counterpart of a
// deviceState, alive for exactly one simulated day.
type liveDev struct {
	p        fleet.Params
	profName string
	eff      int64
	clock    *simclock.Clock
	dev      *device.Device
	tr       *wtrace.Tracer
	clsOrg   wtrace.Origin
	set      *workload.FileSet
	runner   *core.Runner
	step     core.StepFunc
	// workStart anchors the day grid; prevLedger carries the unscaled
	// ledger accumulated before this boot.
	workStart  time.Duration
	prevLedger wtrace.Snapshot
}

// pacer holds a step function to a long-run average byte rate by idling
// the simulated clock — fleet's pacer, rebuilt fresh at every boot (both
// runs reboot at every day boundary, so the reset is canonical).
type pacer struct {
	clock        *simclock.Clock
	step         core.StepFunc
	perSimSecond float64

	start   time.Duration
	started bool
	written int64
}

func (p *pacer) Step(budget int64) (int64, error) {
	if !p.started {
		p.started = true
		p.start = p.clock.Now()
	}
	n, err := p.step(budget)
	p.written += n
	due := time.Duration(float64(p.written) / p.perSimSecond * float64(time.Second))
	if owed := due - (p.clock.Now() - p.start); owed > 0 {
		p.clock.Advance(owed)
	}
	return n, err
}

// dayPlan derives the fault plan for one device-day: re-seeded by
// (plan seed, device seed, day) and filtered of time cuts the previous
// boots already fired. nil when the spec injects nothing.
func dayPlan(spec fleet.Spec, p fleet.Params, day int, after time.Duration) *faultinject.Plan {
	if spec.Faults == nil || spec.Faults.Empty() {
		return nil
	}
	plan := spec.Faults.WithSeed(mix(spec.Faults.Seed+p.Seed, int64(day))).After(after)
	return &plan
}

// fileSizeFor mirrors fleet's file-set sizing: a few percent of capacity,
// clamped up so tiny scaled devices still allow random addressing.
func fileSizeFor(dev *device.Device, reqBytes int64) int64 {
	fileSize := dev.Size() / 40
	if min := 4 * reqBytes; fileSize < min {
		fileSize = min
	}
	return fileSize
}

// newStack builds the device plus tracer for one boot (shared by birth
// and boot).
func newStack(spec fleet.Spec, p fleet.Params, plan *faultinject.Plan, clock *simclock.Clock) (*liveDev, error) {
	prof := spec.Profiles[p.ProfileIndex()].Profile
	prof.Seed = p.Seed
	if plan != nil {
		prof.Faults = plan
	}
	eff := prof.EffectiveScale(spec.Scale)
	dev, err := device.New(prof.Scaled(spec.Scale), clock)
	if err != nil {
		return nil, fmt.Errorf("fleetd: device %d (%s): %w", p.Index, prof.Name, err)
	}
	ld := &liveDev{p: p, profName: prof.Name, eff: eff, clock: clock, dev: dev}
	if spec.WearTrace {
		ld.tr = wtrace.New()
		dev.EnableWearTrace(ld.tr)
		ld.clsOrg = ld.tr.Origin(p.Class.String())
	}
	return ld, nil
}

// finishBoot builds the per-boot runner and paced step function.
func (ld *liveDev) finishBoot(spec fleet.Spec) {
	ld.runner = core.NewRunner(ld.dev, ld.clock, ld.eff)
	ld.runner.StepBytes = spec.StepBytes
	ld.runner.Pattern = ld.p.Class.String()
	ld.step = core.StepFunc(ld.set.Step)
	if ld.p.DailyBytes > 0 {
		ld.step = (&pacer{
			clock:        ld.clock,
			step:         ld.set.Step,
			perSimSecond: float64(ld.p.DailyBytes) / (24 * 60 * 60),
		}).Step
	}
}

// birth runs a device's first boot: mkfs, mount, the initial file fill —
// fleet's setup path, with the same bounded power-cut retry. The clock
// after setup anchors the device's day grid. The second return is true
// when wear or faults kill the device before setup completes (a death,
// not an error, exactly like a failed boot).
func birth(spec fleet.Spec, p fleet.Params) (*liveDev, bool, error) {
	ld, err := newStack(spec, p, dayPlan(spec, p, 0, 0), simclock.New())
	if err != nil {
		return nil, false, err
	}
	fileSize := fileSizeFor(ld.dev, spec.ReqBytes)
	for attempt := 0; ; attempt++ {
		err := func() error {
			if err := extfs.Mkfs(ld.dev); err != nil {
				return fmt.Errorf("mkfs: %w", err)
			}
			mounted, err := extfs.Mount(ld.dev, fs.Options{DataAccounting: true})
			if err != nil {
				return fmt.Errorf("mount: %w", err)
			}
			var fsys fs.FileSystem = mounted
			if ld.tr != nil {
				fsys = wtrace.TagFS(fsys, ld.tr, ld.clsOrg)
			}
			ld.set = workload.NewFileSet(fsys, "/app", fileSize, p.Seed+1)
			ld.set.ReqBytes = spec.ReqBytes
			if err := ld.set.Setup(); err != nil {
				return fmt.Errorf("setup: %w", err)
			}
			return nil
		}()
		if err == nil {
			break
		}
		switch {
		case errors.Is(err, device.ErrPowerLoss) || errors.Is(err, ftl.ErrPowerLoss):
			if attempt >= 8 {
				ld.workStart = ld.clock.Now()
				return ld, true, nil
			}
			if err := ld.dev.PowerCycle(); err != nil {
				return nil, false, fmt.Errorf("fleetd: device %d (%s): power cycle: %w", p.Index, ld.profName, err)
			}
		case errors.Is(err, device.ErrBricked) || errors.Is(err, ftl.ErrBricked),
			errors.Is(err, device.ErrReadOnly) || errors.Is(err, ftl.ErrReadOnly),
			errors.Is(err, ftl.ErrUnreadable),
			errors.Is(err, extfs.ErrCorrupt) || errors.Is(err, extfs.ErrNotExtfs):
			ld.workStart = ld.clock.Now()
			return ld, true, nil
		default:
			return nil, false, fmt.Errorf("fleetd: device %d (%s): %w", p.Index, ld.profName, err)
		}
	}
	ld.finishBoot(spec)
	ld.workStart = ld.clock.Now()
	return ld, false, nil
}

// boot rebuilds a device stack from a captured state: fresh stack, chip
// state imported, RNG streams re-keyed by (seed, day), then a clean power
// cut and the OOB-scan recovery plus remount — exactly what a real device
// does after losing power at the day boundary. The second return is true
// when the device cannot boot (wear killed it between days): that is a
// death, not an error, and it is deterministic because every run passes
// through this same boot at this same boundary.
func boot(spec fleet.Spec, p fleet.Params, st *deviceState) (*liveDev, bool, error) {
	day := st.DaysDone
	clock := simclock.New()
	clock.Advance(st.Now)
	ld, err := newStack(spec, p, dayPlan(spec, p, day, st.Now), clock)
	if err != nil {
		return nil, false, err
	}
	f := ld.dev.FTL()
	if err := f.MainChip().ImportState(st.Main); err != nil {
		return nil, false, fmt.Errorf("fleetd: device %d: %w", p.Index, err)
	}
	f.MainChip().Reseed(mix(p.Seed, int64(day)))
	if cc := f.CacheChip(); cc != nil {
		if st.Cache == nil {
			return nil, false, fmt.Errorf("fleetd: device %d: state has no cache chip", p.Index)
		}
		if err := cc.ImportState(st.Cache); err != nil {
			return nil, false, fmt.Errorf("fleetd: device %d: %w", p.Index, err)
		}
		cc.Reseed(mix(p.Seed, int64(day)) + 1)
	}
	f.RestoreStats(st.FTLStats, st.GCCopies)
	ld.dev.RestoreCounters(st.BytesWritten, st.BytesRead, st.Busy)
	ld.workStart = st.WorkStart
	ld.prevLedger.Merge(st.Ledger)

	ld.set = workload.NewFileSet(nil, "/app", fileSizeFor(ld.dev, spec.ReqBytes), p.Seed+1)
	ld.set.ReqBytes = spec.ReqBytes
	ld.set.Restore(st.FSWrites)
	ld.set.Reseed(mix(p.Seed+1, int64(day)))

	ld.dev.CutPower()
	died, err := ld.remount()
	if err != nil {
		return nil, false, err
	}
	ld.finishBoot(spec)
	return ld, died, nil
}

// remount is fleet's power-cycle/mount/reattach loop with its death
// classification: up to eight attempts (a schedule so hot the phone can
// never come back up counts as dead), power-loss errors retry, the
// boot-killing errors — bricked, read-only, unreadable journal pages,
// wear-destroyed file-system metadata — report death.
func (ld *liveDev) remount() (died bool, err error) {
	for attempt := 0; attempt < 8; attempt++ {
		if err := ld.dev.PowerCycle(); err != nil {
			return false, fmt.Errorf("fleetd: device %d (%s): power cycle: %w", ld.p.Index, ld.profName, err)
		}
		mounted, err := extfs.Mount(ld.dev, fs.Options{DataAccounting: true})
		if err == nil {
			var fsys fs.FileSystem = mounted
			if ld.tr != nil {
				fsys = wtrace.TagFS(fsys, ld.tr, ld.clsOrg)
			}
			err = ld.set.Reattach(fsys)
		}
		switch {
		case err == nil:
			return false, nil
		case errors.Is(err, device.ErrPowerLoss) || errors.Is(err, ftl.ErrPowerLoss):
			// Cut again mid-boot: cycle and try once more.
		case errors.Is(err, device.ErrBricked) || errors.Is(err, ftl.ErrBricked),
			errors.Is(err, device.ErrReadOnly) || errors.Is(err, ftl.ErrReadOnly),
			errors.Is(err, ftl.ErrUnreadable),
			errors.Is(err, extfs.ErrCorrupt) || errors.Is(err, extfs.ErrNotExtfs):
			return true, nil
		default:
			return false, fmt.Errorf("fleetd: device %d (%s): remount: %w", ld.p.Index, ld.profName, err)
		}
	}
	return true, nil
}

// runDay drives the workload until the device's day-(day+1) boundary,
// remounting through mid-day power cuts like fleet does. The day grid is
// integer nanoseconds on the scaled clock — day k ends at
// workStart + ((k+1) * nsPerDay) / eff — so the boundary is a pure
// function of (spec, device), never of float accumulation.
func (ld *liveDev) runDay(day int) (died bool, err error) {
	dayEnd := ld.workStart + time.Duration((int64(day+1)*nsPerDay)/ld.eff)
	stop := func() bool { return ld.clock.Now() >= dayEnd }
	for {
		err := ld.runner.RunPhase(ld.step, 0, stop)
		if err == nil {
			break
		}
		if !errors.Is(err, device.ErrPowerLoss) && !errors.Is(err, ftl.ErrPowerLoss) {
			if errors.Is(err, extfs.ErrCorrupt) || errors.Is(err, extfs.ErrNotExtfs) {
				return true, nil // wear destroyed fs metadata: dead phone
			}
			return false, fmt.Errorf("fleetd: device %d (%s): %w", ld.p.Index, ld.profName, err)
		}
		died, rerr := ld.remount()
		if rerr != nil {
			return false, rerr
		}
		if died {
			return true, nil
		}
	}
	return ld.runner.Report().Bricked, nil
}

// sample reads the device's day row — pure reads of device, FTL, and chip
// state, valid on dead stacks too (a bricked chip still reports wear).
func (ld *liveDev) sample(died bool) (row []int64, wearLevel int) {
	f := ld.dev.FTL()
	main := f.MainChip()
	row = make([]int64, dayCols)
	row[dDevices] = 1
	if died || ld.dev.Failed() {
		row[dBricked] = 1
	}
	if ld.dev.ReadOnly() {
		row[dReadOnly] = 1
	}
	row[dHostBytes] = ld.dev.BytesWritten() * ld.eff
	ms := main.Stats()
	flashBytes, erases, bad := ms.BytesProgrammed, ms.Erases, int64(ms.BadBlocks)
	if cc := f.CacheChip(); cc != nil {
		cs := cc.Stats()
		flashBytes += cs.BytesProgrammed
		erases += cs.Erases
		bad += int64(cs.BadBlocks)
	}
	row[dFlashBytes] = flashBytes * ld.eff
	row[dFlashErases] = erases * ld.eff
	row[dBadBlocks] = bad * ld.eff
	row[dWearAvgMicro] = fixedPoint(main.AvgWear(), 1e6)
	row[dWearMaxMicro] = fixedPoint(main.MaxWear(), 1e6)
	row[dRawBERFemto] = fixedPoint(main.ExpectedRBER(), 1e15)
	wearLevel = f.WearIndicator(ftl.PoolB)
	row[dWearLevel] = int64(wearLevel)
	return row, wearLevel
}

// terminal builds the device's terminal outcome (fleet's DeviceResult
// fields, computed from lifetime counters rather than the per-day runner).
func (ld *liveDev) terminal(bricked bool) outcome {
	return outcome{
		ProfileName: ld.profName,
		Class:       ld.p.Class.String(),
		Bricked:     bricked,
		ReadOnly:    ld.dev.ReadOnly(),
		Days:        (ld.clock.Now() - ld.workStart).Hours() * float64(ld.eff) / 24,
		HostBytes:   ld.dev.BytesWritten() * ld.eff,
		WearLevel:   ld.dev.FTL().WearIndicator(ftl.PoolB),
		WA:          ld.dev.FTL().WriteAmplification(),
	}
}

// cumLedger is the device's lifetime unscaled ledger: everything captured
// before this boot plus this boot's tracer.
func (ld *liveDev) cumLedger() wtrace.Snapshot {
	var s wtrace.Snapshot
	s.Merge(ld.prevLedger)
	if ld.tr != nil {
		s.Merge(ld.tr.Ledger().Snapshot())
	}
	return s
}

// scaledLedger is cumLedger at full-scale volumes.
func (ld *liveDev) scaledLedger() wtrace.Snapshot {
	s := ld.cumLedger()
	s.Scale(ld.eff)
	return s
}

// capture exports the device's persistent state at a day boundary. Pure
// reads: the live stack is discarded afterwards, never resumed.
func (ld *liveDev) capture(daysDone int) *deviceState {
	f := ld.dev.FTL()
	st := &deviceState{
		Index:        ld.p.Index,
		DaysDone:     daysDone,
		Now:          ld.clock.Now(),
		WorkStart:    ld.workStart,
		BytesWritten: ld.dev.BytesWritten(),
		BytesRead:    ld.dev.BytesRead(),
		Busy:         ld.dev.BusyTime(),
		FSWrites:     ld.set.Writes(),
		FTLStats:     f.Stats(),
		GCCopies:     f.GCCopies(),
		Ledger:       ld.cumLedger(),
		Main:         f.MainChip().ExportState(),
	}
	if cc := f.CacheChip(); cc != nil {
		st.Cache = cc.ExportState()
	}
	return st
}

// epochAcc accumulates one (shard, epoch) cell: the epoch's day rows, the
// cumulative frozen contributions of dead devices, the cumulative terminal
// aggregate, and the point-in-time ledger. Workers fold in under the
// mutex; every fold is integer-additive (or name-merged), so the final
// contents are independent of completion order.
type epochAcc struct {
	mu sync.Mutex

	dayLo, dayHi int
	finalEpoch   bool

	series     *DaySeries
	frozenRow  []int64
	frozenWear report.Sketch
	agg        *Aggregate // cumulative dead-device aggregate (the carry)
	survivors  *Aggregate // terminal survivor fold, final epoch only
	liveLedger wtrace.Snapshot
	live       int
}

// newEpochAcc seeds the cell's accumulator from the previous epoch's
// footer carry (nil for epoch 1).
func newEpochAcc(days, dayLo, dayHi int, prev *epochFooter) *epochAcc {
	a := &epochAcc{
		dayLo:      dayLo,
		dayHi:      dayHi,
		finalEpoch: dayHi == days,
		series:     newDaySeries(dayHi - dayLo),
		frozenRow:  make([]int64, dayCols),
		frozenWear: report.NewSketch(wearLevels),
		agg:        newAggregate(),
		survivors:  newAggregate(),
	}
	if prev != nil {
		copy(a.frozenRow, prev.FrozenRows)
		a.frozenWear = prev.FrozenWear.Clone()
		a.agg = prev.Agg.clone()
		// Devices dead before this epoch contribute their frozen sample
		// to every day of it.
		for d := range a.series.Rows {
			for j, v := range a.frozenRow {
				a.series.Rows[d][j] += v
			}
			a.series.Wear[d].MergeSketch(a.frozenWear)
		}
	}
	return a
}

// addDay folds one live device's sample for a global day index.
func (a *epochAcc) addDay(day int, row []int64, wearLevel int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.addDayLocked(day, row, wearLevel)
}

func (a *epochAcc) addDayLocked(day int, row []int64, wearLevel int) {
	r := a.series.Rows[day-a.dayLo]
	for j, v := range row {
		r[j] += v
	}
	a.series.Wear[day-a.dayLo].AddBucket(wearLevel, 1)
}

// foldDeath records a device death on the given global day: its frozen
// sample fills the rest of the epoch and the cumulative frozen carry, and
// its terminal outcome joins the aggregate.
func (a *epochAcc) foldDeath(day int, row []int64, wearLevel int, out outcome, wear wtrace.Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for d := day; d < a.dayHi; d++ {
		a.addDayLocked(d, row, wearLevel)
	}
	for j, v := range row {
		a.frozenRow[j] += v
	}
	a.frozenWear.AddBucket(wearLevel, 1)
	a.agg.add(out, wear)
}

// foldLive records a device that survived the epoch: its count and its
// point-in-time scaled ledger (for mid-run ledger queries).
func (a *epochAcc) foldLive(wear wtrace.Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.live++
	a.liveLedger.Merge(wear)
}

// foldSurvivor records a device's terminal outcome at the horizon (final
// epoch only).
func (a *epochAcc) foldSurvivor(out outcome, wear wtrace.Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.survivors.add(out, wear)
}

// footer freezes the accumulator into the cell's checkpoint footer.
func (a *epochAcc) footer(shard, epoch int) (*epochFooter, error) {
	ft := &epochFooter{
		Shard:      shard,
		Epoch:      epoch,
		DayLo:      a.dayLo,
		DayHi:      a.dayHi,
		Live:       a.live,
		Rows:       a.series.Rows,
		Wear:       a.series.Wear,
		FrozenRows: a.frozenRow,
		FrozenWear: a.frozenWear,
		Agg:        a.agg,
	}
	ft.Ledger.Merge(a.agg.Ledger)
	ft.Ledger.Merge(a.liveLedger)
	if a.finalEpoch {
		ft.Final = a.agg.clone()
		if err := ft.Final.merge(a.survivors); err != nil {
			return nil, err
		}
	}
	return ft, nil
}

// runDeviceEpoch advances one device across the accumulator's day range,
// canonicalising (capture + reboot) at every day boundary. A nil st means
// the device is born at the epoch's first day. It returns the device's
// end-of-epoch state, or nil if the device died (the death is folded into
// acc; dead devices carry no further state).
func runDeviceEpoch(spec fleet.Spec, p fleet.Params, st *deviceState, acc *epochAcc) (*deviceState, error) {
	var ld *liveDev
	for day := acc.dayLo; day < acc.dayHi; day++ {
		var bootDied bool
		var err error
		if st == nil {
			ld, bootDied, err = birth(spec, p)
		} else {
			ld, bootDied, err = boot(spec, p, st)
		}
		if err != nil {
			return nil, err
		}
		died := bootDied
		if !died {
			died, err = ld.runDay(day)
			if err != nil {
				return nil, err
			}
		}
		row, level := ld.sample(died)
		if died {
			acc.foldDeath(day, row, level, ld.terminal(true), ld.scaledLedger())
			return nil, nil
		}
		acc.addDay(day, row, level)
		st = ld.capture(day + 1)
	}
	if acc.finalEpoch {
		acc.foldSurvivor(ld.terminal(false), ld.scaledLedger())
	}
	acc.foldLive(ld.scaledLedger())
	return st, nil
}
