package ecc

import (
	"errors"
	"fmt"
)

// SectorCodec protects arbitrary-size sectors (multiples of 64 bytes) by
// splitting them into Hamming codewords. It is the data-bearing ECC path:
// small simulated devices run their payloads through it so that corruption
// and correction are real, not just counted.
type SectorCodec struct {
	sectorBytes int
	words       int
}

// ErrSectorSize is returned for sectors that are not a positive multiple of
// HammingDataBytes.
var ErrSectorSize = errors.New("ecc: sector size must be a positive multiple of 64")

// NewSectorCodec returns a codec for the given sector size.
func NewSectorCodec(sectorBytes int) (*SectorCodec, error) {
	if sectorBytes <= 0 || sectorBytes%HammingDataBytes != 0 {
		return nil, fmt.Errorf("%w: got %d", ErrSectorSize, sectorBytes)
	}
	return &SectorCodec{sectorBytes: sectorBytes, words: sectorBytes / HammingDataBytes}, nil
}

// SectorBytes returns the protected sector size.
func (s *SectorCodec) SectorBytes() int { return s.sectorBytes }

// ParityBytes returns the per-sector parity overhead (2 bytes per codeword).
func (s *SectorCodec) ParityBytes() int { return s.words * 2 }

// EncodeSector computes the parity stream for a sector. The returned slice
// has ParityBytes bytes (two per codeword, little-endian).
func (s *SectorCodec) EncodeSector(data []byte) ([]byte, error) {
	if len(data) != s.sectorBytes {
		return nil, fmt.Errorf("ecc: EncodeSector: data length %d, want %d", len(data), s.sectorBytes)
	}
	parity := make([]byte, 0, s.ParityBytes())
	for w := 0; w < s.words; w++ {
		cw := Encode(data[w*HammingDataBytes : (w+1)*HammingDataBytes])
		parity = append(parity, byte(cw.Parity), byte(cw.Parity>>8))
	}
	return parity, nil
}

// DecodeSector verifies and repairs a sector in place against its parity
// stream, returning the total number of corrected bits. A codeword with a
// double-bit error makes the whole sector uncorrectable (ErrDetected).
func (s *SectorCodec) DecodeSector(data, parity []byte) (corrected int, err error) {
	if len(data) != s.sectorBytes {
		return 0, fmt.Errorf("ecc: DecodeSector: data length %d, want %d", len(data), s.sectorBytes)
	}
	if len(parity) != s.ParityBytes() {
		return 0, fmt.Errorf("ecc: DecodeSector: parity length %d, want %d", len(parity), s.ParityBytes())
	}
	for w := 0; w < s.words; w++ {
		var cw Codeword
		copy(cw.Data[:], data[w*HammingDataBytes:(w+1)*HammingDataBytes])
		cw.Parity = uint16(parity[w*2]) | uint16(parity[w*2+1])<<8
		n, err := Decode(&cw)
		if err != nil {
			return corrected, fmt.Errorf("codeword %d: %w", w, err)
		}
		if n > 0 {
			copy(data[w*HammingDataBytes:(w+1)*HammingDataBytes], cw.Data[:])
			corrected += n
		}
	}
	return corrected, nil
}
