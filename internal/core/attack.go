package core

import (
	"errors"
	"fmt"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/device"
	"flashwear/internal/fs"
	"flashwear/internal/ftl"
	"flashwear/internal/workload"
)

// AttackMode selects how the malicious app schedules its I/O.
type AttackMode int

const (
	// Continuous writes around the clock — fastest, but visible to the
	// power monitor and the running-apps view.
	Continuous AttackMode = iota
	// Stealth runs only while the phone is charging with the screen off,
	// evading both monitors (§4.4 "Detection"). Both signals are
	// observable by an unprivileged app.
	Stealth
)

// String implements fmt.Stringer.
func (m AttackMode) String() string {
	if m == Stealth {
		return "stealth"
	}
	return "continuous"
}

// Attack is the paper's 963-LoC malicious app: it continuously rewrites
// 100 MB files in its private storage area, requiring no permissions, until
// the phone's flash is destroyed.
type Attack struct {
	App *android.App
	// Mode selects continuous or stealth scheduling.
	Mode AttackMode
	// NumFiles and FileSize shape the file set (defaults: 4 x 100 MiB,
	// divided by Scale).
	NumFiles int
	FileSize int64
	// ReqBytes is the rewrite size (default 4 KiB).
	ReqBytes int64
	// SyncEvery issues fsync after this many writes (default 1).
	SyncEvery int
	// Scale is the device profile's capacity divisor, applied to the
	// file sizes and used to rescale reported volumes/times.
	Scale int64
	// IdleStep is how far the app sleeps when stealth keeps it idle.
	IdleStep time.Duration

	set *workload.FileSet
}

// AttackReport summarises an attack run at full device scale.
type AttackReport struct {
	Mode    AttackMode
	Bricked bool
	HostGiB float64
	// ActiveHours is the I/O time the attack needed (full scale).
	ActiveHours float64
	// DutyCycle is the fraction of the day the attack may run (1 for
	// continuous; the charging∧screen-off window for stealth).
	DutyCycle float64
	// Hours is the wall-clock duration: active time stretched over the
	// duty cycle — §4.4's "within some reasonable factor of the time".
	Hours        float64
	Increments   []Increment
	FinalPreEOL  int
	FootprintPct float64 // file-set share of device capacity (<3% in §1)
	// Detection outcomes (§4.4).
	PowerJoulesAttributed float64
	ProcessObservedCount  int64
}

// NewAttack returns an attack with the paper's parameters for a profile at
// the given scale.
func NewAttack(app *android.App, mode AttackMode, scale int64) *Attack {
	if scale <= 0 {
		scale = 1
	}
	return &Attack{
		App: app, Mode: mode,
		NumFiles: 4, FileSize: 100 << 20 / scale,
		ReqBytes: 4096, SyncEvery: 1,
		Scale: scale, IdleStep: time.Minute,
	}
}

// active reports whether the attack should issue I/O right now.
func (a *Attack) active() bool {
	if a.Mode == Continuous {
		return true
	}
	return a.App.Charging() && !a.App.ScreenOn()
}

// Run drives the attack until the phone bricks or maxSim simulated
// (scaled) time passes. The phone's clock advances through device service
// times and stealth idling.
func (a *Attack) Run(phone *android.Phone, maxSim time.Duration) (AttackReport, error) {
	if a.FileSize < a.ReqBytes {
		return AttackReport{}, fmt.Errorf("core: attack file size %d < request size %d", a.FileSize, a.ReqBytes)
	}
	clockStart := phone.Clock()
	// A stealthy app defers even its setup I/O to the invisible window.
	for a.Mode == Stealth && !a.active() {
		clockStart.Advance(a.IdleStep)
	}
	a.set = workload.NewFileSet(a.App.Storage(), "/wear", a.FileSize, 77)
	a.set.NumFiles = a.NumFiles
	a.set.ReqBytes = a.ReqBytes
	a.set.SyncEvery = a.SyncEvery
	if err := a.set.Setup(); err != nil {
		return AttackReport{}, fmt.Errorf("core: attack setup: %w", err)
	}

	clock := phone.Clock()
	runner := NewRunner(phone.Device(), clock, a.Scale)
	runner.Pattern = fmt.Sprintf("%d KiB rand rewrite (%s)", a.ReqBytes/1024, a.Mode)
	runner.SpaceUtil = phone.Device().FTL().Utilisation()

	deadline := clock.Now() + maxSim
	var activeSim time.Duration
	step := func(budget int64) (int64, error) {
		if clock.Now() >= deadline {
			return 0, errDeadline
		}
		if !a.active() {
			clock.Advance(a.IdleStep)
			return 0, nil
		}
		before := clock.Now()
		n, err := a.set.Step(budget)
		activeSim += clock.Now() - before
		return n, err
	}
	err := runner.RunPhase(step, 0, func() bool { return clock.Now() >= deadline })
	if err != nil && !errors.Is(err, errDeadline) && !isStorageDeath(err) {
		return AttackReport{}, err
	}
	rep := runner.Report()
	if isStorageDeath(err) {
		rep.Bricked = true
	}
	duty := a.dutyCycle(phone)
	active := activeSim.Hours() * float64(a.Scale)
	return AttackReport{
		Mode:                  a.Mode,
		Bricked:               rep.Bricked,
		HostGiB:               rep.TotalHostGiB,
		ActiveHours:           active,
		DutyCycle:             duty,
		Hours:                 active / duty,
		Increments:            rep.Increments,
		FinalPreEOL:           phone.Device().PreEOLInfo(),
		FootprintPct:          100 * float64(a.set.TotalBytes()) / float64(phone.Device().Size()),
		PowerJoulesAttributed: phone.PowerMonitor().AttributedJoules(a.App.Name()),
		ProcessObservedCount:  phone.ProcessMonitor().ObservedCount(a.App.Name()),
	}, nil
}

// dutyCycle returns the fraction of a day the attack may run, sampled at
// one-minute resolution from the phone's schedules.
func (a *Attack) dutyCycle(phone *android.Phone) float64 {
	if a.Mode == Continuous {
		return 1
	}
	activeMinutes := 0
	for m := 0; m < 24*60; m++ {
		t := time.Duration(m) * time.Minute
		if phone.ChargingAt(t) && !phone.ScreenOnAt(t) {
			activeMinutes++
		}
	}
	if activeMinutes == 0 {
		return 1.0 / (24 * 60) // degenerate schedule: effectively never
	}
	return float64(activeMinutes) / (24 * 60)
}

var errDeadline = errors.New("core: simulation deadline reached")

// isStorageDeath reports whether an error chain means the storage died —
// the attack's success condition. On a dying FS the failure can surface as
// any write/sync error wrapping the device/FTL brick errors, or as FS-level
// no-space once the FTL loses too many blocks.
func isStorageDeath(err error) bool {
	return errors.Is(err, device.ErrBricked) || errors.Is(err, ftl.ErrBricked) ||
		errors.Is(err, device.ErrReadOnly) || errors.Is(err, ftl.ErrReadOnly) ||
		errors.Is(err, ftl.ErrUnreadable) || errors.Is(err, fs.ErrNoSpace)
}
