package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"flashwear/internal/hostio"
)

// Event is one entry of a campaign's journal. Two kinds share the record:
//
//   - ops events (Sim false): lifecycle and progress — submitted, paused,
//     resumed, forked, cell_reused, cell_computed, checkpoint_written,
//     epoch_committed, done, failed. Their presence, order, and count
//     depend on scheduling and process history, and that is fine: they
//     describe this process, not the simulation.
//   - sim events (Sim true): alerts and brick milestones. Their payload
//     (Type, Day, Rule, Value, Detail) is a pure function of the
//     campaign's sim-domain day series, so across shards, workers,
//     checkpoint cadence, and resume the set of sim events is identical
//     (the determinism tests compare them via SimString, which strips the
//     ops envelope).
//
// Seq and WallMs are the ops envelope on every event: Seq is assigned by
// the journal (contiguous from 1, never reused, survives crash/resume)
// and WallMs stamps append time.
type Event struct {
	Seq    uint64 `json:"seq"`
	WallMs int64  `json:"wall_ms"`
	Type   string `json:"type"`
	// Sim marks the payload as sim-domain (deterministic).
	Sim bool `json:"sim,omitempty"`
	// Day is the 1-based simulated day the event refers to (0 = none).
	Day int `json:"day,omitempty"`
	// Shard and Epoch locate cell-scoped ops events; Shard is 0-based and
	// only meaningful when Epoch (1-based) is set.
	Shard int `json:"shard,omitempty"`
	Epoch int `json:"epoch,omitempty"`
	// Rule names the alert or milestone rule that fired.
	Rule string `json:"rule,omitempty"`
	// Value is the rule's reading, rendered as an exact integer ratio
	// ("3/1000") so sim events never carry float formatting.
	Value  string `json:"value,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// SimKey identifies a sim event for cross-resume dedup: the same rule
// firing for the same day must journal exactly once per campaign, no
// matter how many sweeps re-derive it.
func (e Event) SimKey() string {
	return fmt.Sprintf("%s|%s|%d", e.Type, e.Rule, e.Day)
}

// SimString is the canonical ops-envelope-free rendering determinism
// fingerprints compare.
func (e Event) SimString() string {
	return fmt.Sprintf("%s day=%d rule=%s value=%s detail=%s", e.Type, e.Day, e.Rule, e.Value, e.Detail)
}

// Journal is an append-only, monotonically-sequenced event log with
// subscriber fan-out. With a path it persists as JSON lines (one fsync
// per append — events are epoch-cadence, not device-cadence) and reloads
// on open, tolerating a torn final line from a crash mid-append; without
// a path it is memory-only. All methods are safe for concurrent use.
//
// # Degraded mode
//
// A journal must never take the campaign down with it: when the host
// disk fails an append (ENOSPC, EIO on write or sync), the event is
// parked in a bounded in-memory ring and Append still succeeds — the
// in-memory log and subscriber fan-out are unaffected. Every later
// append first retries recovery: the file is truncated back to its last
// fully-synced offset (discarding any partial bytes a torn write left)
// and the whole ring replays in order under one fsync, so the on-disk
// sequence stays contiguous with no gaps. If the ring overflows
// (RingCap, default 1024) the journal gives up on persistence for the
// rest of this process — the on-disk file keeps its clean contiguous
// prefix and a restart adopts from that — rather than ever writing a
// sequence gap.
type Journal struct {
	// Logger, when set (before first use), mirrors every append as a
	// structured log line tagged Tag.
	Logger *Logger
	Tag    string
	// RingCap bounds the degraded-mode ring (set before first use;
	// 0 means 1024).
	RingCap int

	mu          sync.Mutex
	fs          hostio.FS
	f           hostio.File // nil when memory-only
	path        string
	goodOff     int64   // bytes of durable, fully-synced, contiguous prefix
	ring        []Event // appended but not yet persisted (degraded mode)
	lost        bool    // ring overflowed: persistence abandoned for this process
	recoveries  int64
	persistErrs int64
	events      []Event
	subs        []*subscriber
	nextSeq     uint64
}

type subscriber struct {
	ch chan Event
}

// OpenJournal opens (or creates) the journal at path over the real host
// filesystem; an empty path makes a memory-only journal.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(hostio.OS{}, path)
}

// OpenJournalFS opens (or creates) the journal at path over fsys,
// replaying existing events; an empty path makes a memory-only journal.
// A torn final line — the signature of a crash mid-append — is truncated
// away, so the next append continues the contiguous sequence; a gap or
// duplicate in the replayed sequence numbers is corruption and fails the
// open.
func OpenJournalFS(fsys hostio.FS, path string) (*Journal, error) {
	j := &Journal{fs: fsys}
	if path == "" {
		return j, nil
	}
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	good := int64(0) // offset past the last fully-parsed line
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			break // no trailing newline: torn tail, drop it
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		var e Event
		if json.Unmarshal(bytes.TrimSpace(line), &e) != nil {
			break // torn or garbled tail: keep the good prefix
		}
		if e.Seq != j.nextSeq+1 {
			f.Close()
			return nil, fmt.Errorf("obs: journal %s: seq %d after %d, want contiguous", path, e.Seq, j.nextSeq)
		}
		j.events = append(j.events, e)
		j.nextSeq = e.Seq
		good += int64(len(line))
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	j.path = path
	j.goodOff = good
	return j, nil
}

// Append assigns the next sequence number and wall timestamp, persists
// the event (when file-backed), fans it out to subscribers, and returns
// the completed event. A host-I/O failure does not fail the append: the
// event is parked in the degraded ring and replayed once writes succeed
// again (see the type comment); the only error Append can return is a
// marshal failure.
func (j *Journal) Append(e Event) (Event, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextSeq++
	e.Seq = j.nextSeq
	e.WallMs = WallNow().UnixMilli()
	if j.f != nil && !j.lost {
		raw, err := json.Marshal(e)
		if err != nil {
			return Event{}, err
		}
		j.persistLocked(e, append(raw, '\n'))
	}
	j.events = append(j.events, e)
	live := j.subs[:0]
	for _, s := range j.subs {
		select {
		case s.ch <- e:
			live = append(live, s)
		default:
			// Slow subscriber: close it out rather than block the
			// campaign; the client reconnects with ?since=.
			close(s.ch)
		}
	}
	j.subs = live
	j.Logger.Log("journal", "campaign", j.Tag, "seq", e.Seq, "type", e.Type, "detail", e.Detail)
	return e, nil
}

// persistLocked writes one marshaled event durably, degrading to the
// ring on failure. When the ring is non-empty the event joins it and a
// full recovery is attempted instead, so events only ever reach the file
// in sequence order.
func (j *Journal) persistLocked(e Event, line []byte) {
	if len(j.ring) > 0 {
		j.enqueueLocked(e)
		j.recoverLocked()
		return
	}
	if _, err := j.f.Write(line); err != nil {
		j.persistErrs++
		j.Logger.Log("journal_degraded", "campaign", j.Tag, "seq", e.Seq, "err", err.Error())
		j.enqueueLocked(e)
		return
	}
	if err := j.f.Sync(); err != nil {
		j.persistErrs++
		j.Logger.Log("journal_degraded", "campaign", j.Tag, "seq", e.Seq, "err", err.Error())
		j.enqueueLocked(e)
		return
	}
	j.goodOff += int64(len(line))
}

// enqueueLocked parks an event in the degraded ring. On overflow the
// journal abandons persistence for the rest of the process: a sequence
// gap on disk would read as corruption on the next open, so the durable
// file keeps its clean contiguous prefix instead.
func (j *Journal) enqueueLocked(e Event) {
	ringCap := j.RingCap
	if ringCap <= 0 {
		ringCap = 1024
	}
	if len(j.ring) >= ringCap {
		j.lost = true
		j.ring = nil
		// Best effort: leave the file a clean contiguous prefix for the
		// next process to adopt.
		if err := j.f.Truncate(j.goodOff); err == nil {
			j.f.Seek(j.goodOff, io.SeekStart)
		}
		j.Logger.Log("journal_lost", "campaign", j.Tag, "ring_cap", ringCap)
		return
	}
	j.ring = append(j.ring, e)
}

// recoverLocked tries to replay the ring: truncate away any partial
// bytes past the durable prefix, rewrite every parked event in order,
// and fsync once. Only a fully-synced replay advances goodOff and clears
// the ring, so a failure mid-replay changes nothing durable.
func (j *Journal) recoverLocked() bool {
	if err := j.f.Truncate(j.goodOff); err != nil {
		return false
	}
	if _, err := j.f.Seek(j.goodOff, io.SeekStart); err != nil {
		return false
	}
	var buf bytes.Buffer
	for _, e := range j.ring {
		raw, err := json.Marshal(e)
		if err != nil {
			return false
		}
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		j.persistErrs++
		return false
	}
	if err := j.f.Sync(); err != nil {
		j.persistErrs++
		return false
	}
	j.goodOff += int64(buf.Len())
	j.Logger.Log("journal_recovered", "campaign", j.Tag, "replayed", len(j.ring))
	j.ring = nil
	j.recoveries++
	return true
}

// Pending returns how many appended events await persistence (0 when
// healthy or memory-only).
func (j *Journal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.ring)
}

// Lost reports whether the degraded ring overflowed and persistence was
// abandoned for this process.
func (j *Journal) Lost() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lost
}

// PersistStats returns (persist failures, successful ring recoveries) —
// ops counters for /metrics.
func (j *Journal) PersistStats() (failures, recoveries int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.persistErrs, j.recoveries
}

// Events returns a copy of every event with Seq > since.
func (j *Journal) Events(since uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinceLocked(since)
}

func (j *Journal) sinceLocked(since uint64) []Event {
	i := 0
	for i < len(j.events) && j.events[i].Seq <= since {
		i++
	}
	return append([]Event(nil), j.events[i:]...)
}

// LastSeq returns the highest assigned sequence number (0 when empty).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Subscribe returns the replay of events after since plus a channel of
// future ones. The channel is closed if the subscriber falls more than a
// buffer behind; cancel unsubscribes (idempotent).
func (j *Journal) Subscribe(since uint64) (replay []Event, ch <-chan Event, cancel func()) {
	s := &subscriber{ch: make(chan Event, 256)}
	j.mu.Lock()
	replay = j.sinceLocked(since)
	j.subs = append(j.subs, s)
	j.mu.Unlock()
	var once sync.Once
	return replay, s.ch, func() {
		once.Do(func() {
			j.mu.Lock()
			for i, sub := range j.subs {
				if sub == s {
					j.subs = append(j.subs[:i], j.subs[i+1:]...)
					break
				}
			}
			j.mu.Unlock()
		})
	}
}

// Close releases the backing file (memory contents stay queryable).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
