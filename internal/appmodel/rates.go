package appmodel

import (
	"math"
	"math/rand"
	"time"
)

// This file derives long-run write-rate figures from the bundled app models
// so population-scale simulations (internal/fleet) can sample per-device
// daily write volumes from the same behavioural model §4.5 argues
// mitigations should be built on, without paying for a full file-system
// replay of every app on every simulated phone.

// Size and period shorthands for the nominal-rate arithmetic.
const (
	day = 24 * time.Hour

	// cameraDailyBytes: 24 MiB burst every 6 h.
	cameraDailyBytes = int64(24<<20) * int64(day/(6*time.Hour))
	// chatDailyBytes: 2 KiB messages every 2 min plus a 64 KiB database
	// compaction every ~50 messages.
	chatMsgsPerDay = int64(day / (2 * time.Minute))
	chatDailyBytes = chatMsgsPerDay*(2<<10) + chatMsgsPerDay/50*(64<<10)
	// updaterDailyBytes: 128 MiB monthly.
	updaterDailyBytes = int64(128<<20) / 30
	// buggyDailyBytes is the nominal volume of the Spotify cache bug [26]:
	// unlike the benign apps it writes whenever the process is alive, and
	// press coverage of the incident reported tens to hundreds of GB per
	// day. 50 GiB/day is the calibration midpoint; the fleet sampler
	// spreads devices around it.
	buggyDailyBytes = int64(50) << 30
)

// NominalDailyBytes returns the long-run average bytes written per day by
// each bundled model under its default parameters, keyed by model name.
func NominalDailyBytes() map[string]int64 {
	return map[string]int64{
		"camera":      cameraDailyBytes,
		"chat":        chatDailyBytes,
		"updater":     updaterDailyBytes,
		"spotify-bug": buggyDailyBytes,
	}
}

// BenignDailyBytes is the nominal daily volume of a phone running the full
// benign population (camera + chat + updater): roughly 100 MiB/day, the
// "decades of life" baseline the paper contrasts the attack against.
func BenignDailyBytes() int64 {
	return cameraDailyBytes + chatDailyBytes + updaterDailyBytes
}

// lognormal draws a multiplicative activity factor with median 1 and the
// given log-scale sigma, clamped to [lo, hi] so one extreme draw cannot
// dominate an aggregate.
func lognormal(rng *rand.Rand, sigma, lo, hi float64) float64 {
	f := math.Exp(rng.NormFloat64() * sigma)
	if f < lo {
		f = lo
	}
	if f > hi {
		f = hi
	}
	return f
}

// SampleBenignDailyBytes draws one device's benign daily write volume: the
// nominal benign population scaled by a log-normal user-activity factor
// (median 1, heavy-ish upper tail — some users shoot far more photos).
func SampleBenignDailyBytes(rng *rand.Rand) int64 {
	return int64(float64(BenignDailyBytes()) * lognormal(rng, 0.6, 0.05, 16))
}

// SampleBuggyDailyBytes draws one device's daily volume under a
// misbehaving-app bug: nominally tens of GiB/day with device-to-device
// spread (cache size, listening hours, and bug trigger rate all vary).
func SampleBuggyDailyBytes(rng *rand.Rand) int64 {
	return int64(float64(buggyDailyBytes) * lognormal(rng, 0.5, 0.1, 8))
}
