package nand

import "errors"

// ErrPowerLoss is returned when power drops before an operation latches,
// and by every subsequent operation until power is restored. Unlike the
// other chip errors it implies nothing about the block: the operation
// simply never happened.
var ErrPowerLoss = errors.New("nand: power lost")

// Op identifies the kind of chip operation a fault injector is consulted
// about.
type Op int

const (
	OpRead Op = iota
	OpProgram
	OpErase
)

// Fault is an injector's verdict for one operation.
type Fault int

const (
	// FaultNone lets the operation proceed normally.
	FaultNone Fault = iota
	// FaultRead makes this read return ErrUncorrectable — a transient
	// ECC overflow. The page's data is intact; a retry may succeed.
	FaultRead
	// FaultProgram makes the program fail exactly like an organic
	// ErrProgramFail: the page is consumed and unusable until erase.
	FaultProgram
	// FaultErase makes the erase fail exactly like an organic
	// ErrEraseFail: the cycle is consumed and the caller should retire
	// the block.
	FaultErase
	// FaultPowerCut drops power before the operation latches: nothing on
	// the chip mutates, the operation returns ErrPowerLoss, and so does
	// every later operation until the injector reports power restored.
	FaultPowerCut
)

// FaultInjector decides, per operation, whether to inject a fault. A chip
// with a nil injector pays a single pointer comparison per operation; the
// hot path is otherwise untouched.
//
// Down gates persistent side effects that are not operations (MarkBad):
// while power is cut, firmware cannot persist anything, so the chip
// ignores such requests.
type FaultInjector interface {
	Inject(op Op) Fault
	Down() bool
}
