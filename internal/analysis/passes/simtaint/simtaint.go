// Package simtaint is a cross-package determinism taint analysis.
//
// Invariant: a simulation run is a pure function of its Spec. The
// syntactic analyzers (wallclock, globalrand, maporder) ban *calling* a
// nondeterminism source in sim-domain code, but a value produced legally
// in an ops-domain package can still *flow* — through returns, struct
// fields, closures, channels, and cross-package calls — into sim-persistent
// state: snapshot codec fields, fleet aggregate merges, alert payloads,
// fingerprint inputs. The PR 7 obs.WallNow laundering ban was a
// hand-written special case of this; simtaint is the general rule.
//
// The analysis computes one summary per function — which results carry
// taint, which parameters flow into which results, which parameters reach
// a sim-persistent sink — by walking the function body to a fixpoint. The
// summaries are exported as facts (internal/analysis facts layer), so a
// downstream package sees its callees' behavior without re-analysis: when
// package sim calls ops.Stamp() and ops.Stamp's summary says "result 0 is
// wallclock-tainted", the value is tainted in sim no matter how many
// assignments, fields, or channels it crosses before reaching a sink.
//
// Taint kinds and their sources:
//
//   - wallclock: time.Now/Since/Until/After/Tick, plus the ops-plane
//     readbacks wallclock bans (obs.WallNow, runtrace.Totals/Snapshot)
//   - rand: the global math/rand and math/rand/v2 draw functions
//     (globalrand.GlobalFuncs — the two analyzers share one table)
//   - hostenv: os.Getenv and friends — process environment, pid, host name
//   - hostio: host-filesystem *metadata* (hostio.FS ReadDir/Stat,
//     os.Stat/ReadDir, fs.FileInfo.ModTime). File *contents* read through
//     hostio are deliberately not sources: checkpoint payloads are
//     CRC-verified bytes the deterministic writer produced, and tainting
//     them would flag every legitimate resume path.
//   - maporder: a slice grown inside `range someMap` and not sorted in the
//     same function — the escape maporder cannot see once the slice leaves
//     the function.
//
// Sinks are declared, not guessed: a function whose doc comment carries
//
//	//flashvet:sim-sink <what sim-persistent state this writes>
//
// treats every parameter as sim-persistent state, and the sink property
// propagates transitively through summaries (a function that forwards its
// parameter to a sink is itself a sink in that parameter). A tainted value
// reaching a sink parameter is a finding at the call site.
//
// //flashvet:ops-domain packages are exempt from *reporting* — they are
// allowed to traffic in host state — but their summaries are still
// computed and exported, which is the whole point: the waiver's claim
// ("nothing we produce flows back into simulation results") stops being
// trusted and starts being checked in every package that consumes them.
//
// The ops-domain declaration also orients the boundary. Four flows are
// sanctioned and carry no taint:
//
//   - writes INTO ops-plane state, whether through a call (journaling an
//     event) or a direct field store (configuring a journal's Logger) —
//     host data belongs there, and anything read back out is re-tainted
//     by the accessor's summary;
//   - an ops-domain function's writes through the caller's pointers (a
//     journal persisting wall-stamped events through the caller's fs
//     handle) — ops-plane effects by declaration;
//   - holding an opaque handle whose named type lives in an ops-domain
//     package (*obs.Journal, *runtrace.Span);
//   - error values: an error is a diagnostic about a host operation, not
//     simulation data, so err propagation does not spread its producer's
//     taint.
package simtaint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flashwear/internal/analysis"
	"flashwear/internal/analysis/passes/globalrand"
	"flashwear/internal/analysis/passes/wallclock"
)

// SinkPrefix declares a root sink on the function whose doc comment
// carries it; the description is mandatory, like every flashvet waiver.
const SinkPrefix = "flashvet:sim-sink"

// Kind enumerates the taint classes. Values are serialized (by position)
// in facts; append only.
type Kind int

const (
	KindWallclock Kind = iota
	KindRand
	KindHostenv
	KindHostio
	KindMaporder
	nKinds
)

var kindNames = [nKinds]string{"wallclock", "rand", "hostenv", "hostio", "maporder"}

// A Taint records, per kind, the first-seen origin of that kind ("" =
// untainted). Keeping an origin string instead of a bare bit makes the
// findings actionable: "wallclock (from obs.WallNow)" names the leak.
type Taint struct {
	Origins [nKinds]string
}

func (t *Taint) add(k Kind, origin string) bool {
	if t.Origins[k] != "" {
		return false
	}
	t.Origins[k] = origin
	return true
}

func (t *Taint) union(o Taint) bool {
	changed := false
	for k, origin := range o.Origins {
		if origin != "" && t.add(Kind(k), origin) {
			changed = true
		}
	}
	return changed
}

func (t Taint) empty() bool {
	for _, o := range t.Origins {
		if o != "" {
			return false
		}
	}
	return true
}

// describe renders "wallclock (from time.Now)" or
// "wallclock+rand (from time.Now, rand.Intn)" for findings.
func (t Taint) describe() string {
	var kinds, origins []string
	for k, o := range t.Origins {
		if o != "" {
			kinds = append(kinds, kindNames[k])
			origins = append(origins, o)
		}
	}
	return strings.Join(kinds, "+") + " (from " + strings.Join(origins, ", ") + ")"
}

// FuncTaint is the per-function summary exported as a fact. Parameter
// slots: slot 0 is the receiver (reserved, unused for plain functions),
// value parameters occupy slots 1..N in declaration order; a variadic
// call's extra arguments all map to the last slot.
type FuncTaint struct {
	// Results[i] is the taint result i carries regardless of arguments.
	Results []Taint `json:",omitempty"`
	// ParamFlow[s] lists the result indices parameter slot s flows into.
	ParamFlow [][]int `json:",omitempty"`
	// ParamTainted[s] is taint the function writes *through* parameter
	// slot s (a pointer, slice, map, or receiver the caller still holds).
	ParamTainted []Taint `json:",omitempty"`
	// ParamSink[s] is non-empty when parameter slot s flows into a
	// sim-persistent sink inside the function (directly or transitively);
	// it holds the sink's description.
	ParamSink []string `json:",omitempty"`
	// SinkDecl is the //flashvet:sim-sink description on the function
	// itself, "" otherwise.
	SinkDecl string `json:",omitempty"`
}

// AFact marks FuncTaint as a fact type.
func (*FuncTaint) AFact() {}

// OpsDomainFact is the package-level fact simtaint exports for every
// //flashvet:ops-domain package. It turns the declaration into something
// downstream packages can consult: a write into ops-domain-owned state
// (say, journaling an event into an *obs.Journal) is a flow INTO the ops
// plane — the sanctioned direction — and does not taint the sim-side
// object holding the reference. Anything read back OUT of that state
// still carries taint through the accessor's own summary, so the
// boundary is checked at every crossing rather than trusted wholesale.
type OpsDomainFact struct{ Declared bool }

// AFact marks OpsDomainFact as a fact type.
func (*OpsDomainFact) AFact() {}

func (ft *FuncTaint) trivial() bool {
	for _, t := range ft.Results {
		if !t.empty() {
			return false
		}
	}
	for _, f := range ft.ParamFlow {
		if len(f) > 0 {
			return false
		}
	}
	for _, t := range ft.ParamTainted {
		if !t.empty() {
			return false
		}
	}
	for _, s := range ft.ParamSink {
		if s != "" {
			return false
		}
	}
	return ft.SinkDecl == ""
}

var Analyzer = &analysis.Analyzer{
	Name: "simtaint",
	Doc: "trace nondeterminism taint across packages into sim-persistent sinks\n\n" +
		"Wall-clock, global-rand, host-env, host-FS-metadata and map-order\n" +
		"values may not flow — through any chain of returns, fields,\n" +
		"closures, channels, or cross-package calls — into declared\n" +
		"//flashvet:sim-sink state (snapshot codec, aggregate merges,\n" +
		"alerts). Function summaries travel as facts, so ops-domain\n" +
		"waivers are verified at every consumer instead of trusted.",
	FactTypes: []analysis.Fact{(*FuncTaint)(nil), (*OpsDomainFact)(nil)},
	Run:       run,
}

// maxIterations bounds the per-package fixpoint; every update is a
// monotone union over finite sets, so this is a backstop, not a limit
// reached in practice.
const maxIterations = 32

// sourceOf reports the intrinsic taint of calling fn, for sources defined
// outside the analyzed module (stdlib) or doubling as belt-and-braces for
// the ops-plane readbacks (whose summaries would taint them anyway).
func sourceOf(fn *types.Func) (Kind, string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0, "", false
	}
	name := fn.Name()
	recv := fn.Type().(*types.Signature).Recv()
	switch pkg.Path() {
	case "time":
		if recv == nil {
			switch name {
			case "Now", "Since", "Until", "After", "Tick":
				return KindWallclock, "time." + name, true
			}
		}
	case "os":
		if recv == nil {
			switch name {
			case "Getenv", "LookupEnv", "Environ", "ExpandEnv", "Hostname",
				"Getpid", "Getppid", "Getuid", "Getwd", "UserHomeDir",
				"UserCacheDir", "UserConfigDir", "TempDir":
				return KindHostenv, "os." + name, true
			case "Stat", "Lstat", "ReadDir":
				return KindHostio, "os." + name, true
			}
		}
	case "io/fs":
		if recv != nil && name == "ModTime" {
			return KindHostio, "fs.FileInfo.ModTime", true
		}
	case "flashwear/internal/hostio":
		if recv != nil && (name == "ReadDir" || name == "Stat") {
			return KindHostio, "hostio." + name, true
		}
	}
	if globalrand.IsRandPkg(pkg) && globalrand.GlobalFuncs[name] && recv == nil {
		return KindRand, "rand." + name, true
	}
	if wallclock.OpsSources[pkg.Path()][name] {
		return KindWallclock, pkg.Name() + "." + name, true
	}
	return 0, "", false
}

// A val is the abstract value of one expression: concrete taint plus the
// set of enclosing-function parameter slots that flow into it.
type val struct {
	t      Taint
	params uint64
}

func (v *val) union(o val) bool {
	changed := v.t.union(o.t)
	if o.params&^v.params != 0 {
		v.params |= o.params
		changed = true
	}
	return changed
}

// pkgTaint is the per-package analysis state.
type pkgTaint struct {
	pass    *analysis.Pass
	decls   []*ast.FuncDecl
	fnOf    map[*ast.FuncDecl]*types.Func
	sums    map[*types.Func]*FuncTaint
	envs    map[*types.Func]map[types.Object]*val
	changed bool
	// hits collects sink findings keyed by position+sink so the fixpoint
	// overwrites each site with its most complete taint description.
	hits map[string]hit
}

type hit struct {
	pos token.Pos
	msg string
}

func run(pass *analysis.Pass) error {
	ops := analysis.OpsDomain(pass, false)
	if ops {
		pass.ExportPackageFact(&OpsDomainFact{Declared: true})
	}
	p := &pkgTaint{
		pass: pass,
		fnOf: make(map[*ast.FuncDecl]*types.Func),
		sums: make(map[*types.Func]*FuncTaint),
		envs: make(map[*types.Func]map[types.Object]*val),
		hits: make(map[string]hit),
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.decls = append(p.decls, fd)
			p.fnOf[fd] = fn
			sum := newSummary(fn)
			if desc, malformed, found := sinkDecl(fd); found {
				if malformed {
					if !pass.FactsOnly {
						pass.Reportf(fd.Pos(), "%s declaration has no description: say what sim-persistent state %s writes", SinkPrefix, fn.Name())
					}
				} else {
					sum.SinkDecl = desc
					// Every slot, receiver included: on a declared sink
					// like alertEvent.event() the receiver IS the payload.
					for s := range sum.ParamSink {
						sum.ParamSink[s] = desc
					}
				}
			}
			p.sums[fn] = sum
		}
	}

	for iter := 0; iter < maxIterations; iter++ {
		p.changed = false
		for _, fd := range p.decls {
			p.analyzeFunc(fd)
		}
		if !p.changed {
			break
		}
	}

	// Findings are suppressed in ops-domain packages (host state is their
	// business) and on facts-only visits; the summaries are exported
	// regardless, so downstream sim packages still see the taint.
	if !ops && !pass.FactsOnly {
		keys := make([]string, 0, len(p.hits))
		for k := range p.hits {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if p.hits[keys[i]].pos != p.hits[keys[j]].pos {
				return p.hits[keys[i]].pos < p.hits[keys[j]].pos
			}
			return keys[i] < keys[j]
		})
		for _, k := range keys {
			pass.Reportf(p.hits[k].pos, "%s", p.hits[k].msg)
		}
	}

	for _, fd := range p.decls {
		fn := p.fnOf[fd]
		if sum := p.sums[fn]; !sum.trivial() {
			pass.ExportObjectFact(fn, sum)
		}
	}
	return nil
}

// sinkDecl parses a //flashvet:sim-sink declaration from a function's doc
// comment, returning its description, whether it is malformed, and whether
// one exists at all.
func sinkDecl(fd *ast.FuncDecl) (desc string, malformed, found bool) {
	if fd.Doc == nil {
		return "", false, false
	}
	for _, c := range fd.Doc.List {
		text, ok := strings.CutPrefix(c.Text, "//"+SinkPrefix)
		if !ok {
			continue
		}
		if i := strings.Index(text, "//"); i >= 0 {
			text = text[:i]
		}
		if text != "" && !strings.HasPrefix(text, " ") && !strings.HasPrefix(text, "\t") {
			continue // some other directive sharing the prefix
		}
		desc = strings.TrimSpace(text)
		return desc, desc == "", true
	}
	return "", false, false
}

func newSummary(fn *types.Func) *FuncTaint {
	sig := fn.Type().(*types.Signature)
	slots := sig.Params().Len() + 1
	return &FuncTaint{
		Results:      make([]Taint, sig.Results().Len()),
		ParamFlow:    make([][]int, slots),
		ParamTainted: make([]Taint, slots),
		ParamSink:    make([]string, slots),
	}
}

// fnWalk analyzes one function body against the current summaries.
type fnWalk struct {
	p            *pkgTaint
	fn           *types.Func
	sum          *FuncTaint
	env          map[types.Object]*val
	slotOf       map[types.Object]int
	namedResults []types.Object
	sorted       map[types.Object]bool
	mapRanges    []*ast.RangeStmt
	retTargets   []*val
}

func (p *pkgTaint) analyzeFunc(fd *ast.FuncDecl) {
	fn := p.fnOf[fd]
	env := p.envs[fn]
	if env == nil {
		env = make(map[types.Object]*val)
		p.envs[fn] = env
	}
	w := &fnWalk{
		p:      p,
		fn:     fn,
		sum:    p.sums[fn],
		env:    env,
		slotOf: make(map[types.Object]int),
		sorted: make(map[types.Object]bool),
	}

	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		for _, name := range fd.Recv.List[0].Names {
			if obj := p.pass.TypesInfo.Defs[name]; obj != nil {
				w.slotOf[obj] = 0
			}
		}
	}
	slot := 1
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				slot++
				continue
			}
			for _, name := range field.Names {
				if obj := p.pass.TypesInfo.Defs[name]; obj != nil {
					w.slotOf[obj] = slot
				}
				slot++
			}
		}
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := p.pass.TypesInfo.Defs[name]; obj != nil {
					w.namedResults = append(w.namedResults, obj)
				}
			}
		}
	}

	// The sorted-afterwards exemption for maporder taint: any object that
	// is ever handed to a sort.*/slices.* function in this body.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cfn := p.pass.FuncOf(call)
		if cfn == nil || cfn.Pkg() == nil {
			return true
		}
		if path := cfn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := p.pass.TypesInfo.Uses[id]; obj != nil {
					w.sorted[obj] = true
				}
			}
		}
		return true
	})

	w.execBlock(fd.Body)
}

// ---- statement execution ----

func (w *fnWalk) execBlock(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.exec(s)
	}
}

func (w *fnWalk) exec(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.execBlock(s)
	case *ast.ExprStmt:
		w.eval1(s.X)
	case *ast.AssignStmt:
		w.execAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					vals := w.evalMulti(vs.Values[0], len(vs.Names))
					for i, name := range vs.Names {
						w.bind(name, vals[i])
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.bind(name, w.eval1(vs.Values[i]))
					}
				}
			}
		}
	case *ast.IfStmt:
		w.exec(s.Init)
		w.eval1(s.Cond)
		w.execBlock(s.Body)
		w.exec(s.Else)
	case *ast.ForStmt:
		w.exec(s.Init)
		if s.Cond != nil {
			w.eval1(s.Cond)
		}
		w.exec(s.Post)
		w.execBlock(s.Body)
	case *ast.RangeStmt:
		w.execRange(s)
	case *ast.SwitchStmt:
		w.exec(s.Init)
		if s.Tag != nil {
			w.eval1(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.eval1(e)
				}
				for _, st := range cc.Body {
					w.exec(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.exec(s.Init)
		var subject val
		switch a := s.Assign.(type) {
		case *ast.AssignStmt:
			if len(a.Rhs) == 1 {
				subject = w.eval1(a.Rhs[0])
			}
		case *ast.ExprStmt:
			subject = w.eval1(a.X)
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			// The per-clause implicit variable gets the subject's taint.
			if obj := w.p.pass.TypesInfo.Implicits[cc]; obj != nil {
				w.update(obj, subject)
			}
			for _, st := range cc.Body {
				w.exec(st)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.exec(cc.Comm)
				for _, st := range cc.Body {
					w.exec(st)
				}
			}
		}
	case *ast.SendStmt:
		v := w.eval1(s.Value)
		w.assignThrough(s.Chan, v)
	case *ast.ReturnStmt:
		w.execReturn(s)
	case *ast.DeferStmt:
		w.evalCall(s.Call)
	case *ast.GoStmt:
		w.evalCall(s.Call)
	case *ast.LabeledStmt:
		w.exec(s.Stmt)
	}
}

func (w *fnWalk) execRange(s *ast.RangeStmt) {
	xv := w.eval1(s.X)
	isMap := false
	if tv, ok := w.p.pass.TypesInfo.Types[s.X]; ok {
		_, isMap = tv.Type.Underlying().(*types.Map)
	}
	if s.Key != nil {
		w.assignExpr(s.Key, xv, s.Tok == token.DEFINE)
	}
	if s.Value != nil {
		w.assignExpr(s.Value, xv, s.Tok == token.DEFINE)
	}
	if isMap {
		w.mapRanges = append(w.mapRanges, s)
		w.execBlock(s.Body)
		w.mapRanges = w.mapRanges[:len(w.mapRanges)-1]
		return
	}
	w.execBlock(s.Body)
}

func (w *fnWalk) execReturn(s *ast.ReturnStmt) {
	if len(w.retTargets) > 0 {
		// Inside a function literal: returns feed the closure's value.
		target := w.retTargets[len(w.retTargets)-1]
		for _, e := range s.Results {
			v := w.eval1(e)
			if target.union(v) {
				w.p.changed = true
			}
		}
		return
	}
	nres := len(w.sum.Results)
	var vals []val
	switch {
	case len(s.Results) == 0:
		// Bare return: named results carry the values.
		vals = make([]val, nres)
		for i, obj := range w.namedResults {
			if i < nres {
				vals[i] = w.lookup(obj)
			}
		}
	case len(s.Results) == 1 && nres > 1:
		vals = w.evalMulti(s.Results[0], nres)
	default:
		for _, e := range s.Results {
			vals = append(vals, w.eval1(e))
		}
	}
	for i, v := range vals {
		if i >= nres {
			break
		}
		if w.sum.Results[i].union(v.t) {
			w.p.changed = true
		}
		for slot := 0; slot < 64; slot++ {
			if v.params&(1<<slot) == 0 {
				continue
			}
			if slot < len(w.sum.ParamFlow) && !containsInt(w.sum.ParamFlow[slot], i) {
				w.sum.ParamFlow[slot] = insertSorted(w.sum.ParamFlow[slot], i)
				w.p.changed = true
			}
		}
	}
}

func (w *fnWalk) execAssign(s *ast.AssignStmt) {
	var vals []val
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		vals = w.evalMulti(s.Rhs[0], len(s.Lhs))
	} else {
		for _, e := range s.Rhs {
			vals = append(vals, w.eval1(e))
		}
	}
	for i, lhs := range s.Lhs {
		if i >= len(vals) {
			break
		}
		v := vals[i]
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Compound assignment reads the old value too.
			v.union(w.eval1(lhs))
		}
		// maporder: growing a loop-outer slice inside `range map`, unless
		// the function sorts it afterwards.
		if len(w.mapRanges) > 0 && i < len(s.Rhs) && w.growingAppend(lhs, s.Rhs[min(i, len(s.Rhs)-1)]) {
			if obj := w.rootObject(lhs); obj != nil && !w.sorted[obj] {
				rng := w.mapRanges[len(w.mapRanges)-1]
				if obj.Pos() < rng.Pos() || obj.Pos() >= rng.End() {
					v.t.add(KindMaporder, "range over map")
				}
			}
		}
		w.assignExpr(lhs, v, s.Tok == token.DEFINE)
	}
}

// bind assigns v to a freshly declared identifier.
func (w *fnWalk) bind(name *ast.Ident, v val) {
	if obj := w.p.pass.TypesInfo.Defs[name]; obj != nil {
		w.update(obj, v)
	}
}

// assignExpr routes an assignment to lhs: plain identifiers update their
// object; writes through selectors, indexes, and dereferences taint the
// root object (coarse object-level granularity — one tainted field taints
// the struct, which is conservative but keeps the analysis tractable).
func (w *fnWalk) assignExpr(lhs ast.Expr, v val, define bool) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if define {
			w.bind(id, v)
			return
		}
		if obj := w.p.pass.TypesInfo.Uses[id]; obj != nil {
			w.update(obj, v)
		}
		return
	}
	w.assignThrough(lhs, v)
}

// assignThrough handles writes through an lvalue chain (x.f = v,
// m[k] = v, *p = v, ch <- v): the root object is tainted, and if the root
// is a pointer-like parameter — one whose pointee the caller still holds
// — the write escapes to the caller via ParamTainted. Writes into a
// by-value parameter mutate a local copy and stay local. Writes whose
// root is an ops-domain-typed value (configuring a journal or tracer
// handle) are the sanctioned sim→ops direction and do not make the
// handle sim-tainted, mirroring the call-site ParamTainted rule.
func (w *fnWalk) assignThrough(lhs ast.Expr, v val) {
	obj := w.rootObject(lhs)
	if obj == nil {
		return
	}
	if w.opsNamedType(obj.Type()) {
		return
	}
	w.update(obj, v)
	if slot, ok := w.slotOf[obj]; ok && !v.t.empty() && pointerLike(paramType(w.fn, slot)) {
		if slot < len(w.sum.ParamTainted) && w.sum.ParamTainted[slot].union(v.t) {
			w.p.changed = true
		}
	}
}

// paramType returns the static type of parameter slot s of fn (slot 0 =
// receiver), or nil when the slot does not exist.
func paramType(fn *types.Func, slot int) types.Type {
	sig := fn.Type().(*types.Signature)
	if slot == 0 {
		if recv := sig.Recv(); recv != nil {
			return recv.Type()
		}
		return nil
	}
	if slot-1 < sig.Params().Len() {
		return sig.Params().At(slot - 1).Type()
	}
	return nil
}

// pointerLike reports whether a write through a value of type t is
// visible to whoever supplied the value. Type parameters count: their
// instantiations may be pointerish.
func pointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

func (w *fnWalk) rootObject(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := w.p.pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return w.p.pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// update unions v into obj's abstract value.
func (w *fnWalk) update(obj types.Object, v val) {
	cur, ok := w.env[obj]
	if !ok {
		cur = &val{}
		w.env[obj] = cur
	}
	if cur.union(v) {
		w.p.changed = true
	}
}

// lookup reads obj's abstract value: accumulated taint plus, for
// parameters, the slot bit marking caller-provided flow.
func (w *fnWalk) lookup(obj types.Object) val {
	var v val
	if cur, ok := w.env[obj]; ok {
		v.union(*cur)
	}
	if slot, ok := w.slotOf[obj]; ok {
		v.params |= 1 << slot
	}
	return v
}

// ---- expression evaluation ----

func (w *fnWalk) eval1(e ast.Expr) val {
	if e == nil {
		return val{}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.p.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = w.p.pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return val{}
		}
		switch obj.(type) {
		case *types.Var:
			return w.lookup(obj)
		}
		return val{}
	case *ast.ParenExpr:
		return w.eval1(e.X)
	case *ast.SelectorExpr:
		return w.eval1(e.X)
	case *ast.StarExpr:
		return w.eval1(e.X)
	case *ast.UnaryExpr:
		return w.eval1(e.X)
	case *ast.BinaryExpr:
		v := w.eval1(e.X)
		v.union(w.eval1(e.Y))
		return v
	case *ast.CallExpr:
		var v val
		for _, r := range w.evalCall(e) {
			v.union(r)
		}
		return v
	case *ast.IndexExpr:
		if w.isFuncRef(e.X) {
			return val{} // generic function instantiation used as a value
		}
		v := w.eval1(e.X)
		v.union(w.eval1(e.Index))
		return v
	case *ast.IndexListExpr:
		if w.isFuncRef(e.X) {
			return val{}
		}
		return w.eval1(e.X)
	case *ast.SliceExpr:
		return w.eval1(e.X)
	case *ast.TypeAssertExpr:
		return w.eval1(e.X)
	case *ast.CompositeLit:
		var v val
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v.union(w.eval1(kv.Value))
				continue
			}
			v.union(w.eval1(elt))
		}
		return v
	case *ast.KeyValueExpr:
		return w.eval1(e.Value)
	case *ast.FuncLit:
		// The closure's value is whatever its returns produce; its body
		// executes here (conservatively: effects on captured variables
		// and sink calls inside count whether or not it ever runs).
		var v val
		w.retTargets = append(w.retTargets, &v)
		w.execBlock(e.Body)
		w.retTargets = w.retTargets[:len(w.retTargets)-1]
		return v
	}
	return val{}
}

func (w *fnWalk) isFuncRef(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := w.p.pass.TypesInfo.Uses[x].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := w.p.pass.TypesInfo.Uses[x.Sel].(*types.Func)
		return ok
	}
	return false
}

// evalMulti evaluates a single expression expected to produce n values
// (multi-result call, v-ok map/assert/receive forms).
func (w *fnWalk) evalMulti(e ast.Expr, n int) []val {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		vals := w.evalCall(call)
		for len(vals) < n {
			vals = append(vals, val{})
		}
		return vals
	}
	vals := make([]val, n)
	vals[0] = w.eval1(e) // the ok/err companion carries no data taint
	return vals
}

// callee resolves a call to the invoked *types.Func, unwrapping generic
// instantiation syntax; nil for builtins, conversions, and indirect calls.
func (w *fnWalk) callee(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := w.p.pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := w.p.pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (w *fnWalk) evalCall(call *ast.CallExpr) []val {
	info := w.p.pass.TypesInfo

	// Conversions: T(x) carries x's taint.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []val{w.eval1(call.Args[0])}
		}
		return []val{{}}
	}

	// Builtins: append/copy/min/max/len/cap propagate, make/new are clean.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "recover":
				return []val{{}}
			default:
				var v val
				for _, a := range call.Args {
					if _, isType := info.Types[a]; isType && info.Types[a].IsType() {
						continue
					}
					v.union(w.eval1(a))
				}
				return []val{v}
			}
		}
	}

	fn := w.callee(call)
	if fn == nil {
		// Indirect call through a function value: the result carries the
		// callee value's taint (closure capture) and every argument's.
		v := w.eval1(call.Fun)
		for _, a := range call.Args {
			v.union(w.eval1(a))
		}
		return w.spread(call, v)
	}

	// Assemble argument slots: receiver at 0, parameters from 1.
	sig := fn.Type().(*types.Signature)
	nparams := sig.Params().Len()
	slots := make([]val, nparams+1)
	args := call.Args
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := info.Selections[sel]; isSel {
				slots[0] = w.eval1(sel.X)
			}
		}
		if len(args) == nparams+1 {
			// Method expression T.M(recv, ...): explicit receiver first.
			slots[0].union(w.eval1(args[0]))
			args = args[1:]
		}
	}
	for i, a := range args {
		s := i + 1
		if s > nparams {
			s = nparams // variadic overflow maps to the last slot
		}
		slots[s].union(w.eval1(a))
	}

	if k, origin, ok := sourceOf(fn); ok {
		var v val
		v.t.add(k, origin)
		for _, s := range slots {
			v.union(s)
		}
		return w.spread(call, v)
	}

	sum := w.summaryOf(fn)
	if sum == nil {
		// Unknown external: conservatively assume everything flows to
		// every result — this is what catches laundering through
		// fmt.Sprintf, strconv, bytes.Buffer, and friends.
		var v val
		for _, s := range slots {
			v.union(s)
		}
		return w.spread(call, v)
	}

	// Sink frontier: a concrete tainted value meeting a sink parameter is
	// a finding; a caller parameter meeting one makes the caller a sink
	// in that parameter (transitive propagation).
	for s, desc := range sum.ParamSink {
		if desc == "" || s >= len(slots) {
			continue
		}
		if !slots[s].t.empty() {
			pos := call.Pos()
			if s >= 1 && s-1 < len(args) {
				pos = args[s-1].Pos()
			}
			key := fmt.Sprintf("%d/%s", pos, displayName(w.p.pass, fn))
			w.p.hits[key] = hit{pos: pos, msg: fmt.Sprintf(
				"%s value flows into sim-persistent sink %s (%s): simulation state must be a pure function of the Spec",
				slots[s].t.describe(), displayName(w.p.pass, fn), desc)}
		}
		// Transitive sink-ness propagates through data parameters but
		// NOT through the caller's receiver (q == 0): with object-level
		// taint granularity, an orchestrator's receiver aggregates every
		// field it owns, and "this method eventually touches a sink"
		// would flag every call on it. The data that actually enters the
		// sink still flags at the call site that passes it.
		for q := 1; q < 64; q++ {
			if slots[s].params&(1<<q) == 0 {
				continue
			}
			if q < len(w.sum.ParamSink) && w.sum.ParamSink[q] == "" {
				w.sum.ParamSink[q] = desc
				w.p.changed = true
			}
		}
	}

	// Writes through arguments (including the receiver) escape to the
	// caller's objects — unless the written-through state is owned by a
	// declared ops-domain package (journals, metric registries, traces),
	// or the callee itself lives in one: stashing host data inside the
	// ops plane is the sanctioned direction, and an ops-domain function's
	// writes (a journal persisting wall-stamped events through the
	// caller's fs handle) are ops-plane effects by that declaration.
	// Whatever is later read back out carries taint via the accessor's
	// summary. Without this, one journaled event would taint the whole
	// Campaign object forever.
	opsCallee := fn.Pkg() != nil && fn.Pkg() != w.p.pass.Pkg && w.opsDomainPkg(fn.Pkg().Path())
	for s, t := range sum.ParamTainted {
		if t.empty() || opsCallee || w.opsDomainState(fn, s) {
			continue
		}
		var target ast.Expr
		if s == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				target = sel.X
			}
		} else if s-1 < len(args) {
			target = args[s-1]
		}
		if target != nil {
			w.assignThrough(target, val{t: t})
		}
	}

	results := make([]val, len(sum.Results))
	for i, t := range sum.Results {
		results[i].t.union(t)
	}
	for s, flows := range sum.ParamFlow {
		if s >= len(slots) {
			continue
		}
		for _, i := range flows {
			if i < len(results) {
				results[i].union(slots[s])
			}
		}
	}
	// The boundary rule, outbound: a result whose named type lives in an
	// ops-domain package (*obs.Journal, *runtrace.Span) is an opaque
	// handle to ops-plane state, not sim data — holding one is clean.
	// Error results are cleared for the same reason: an error is a
	// diagnostic about a host operation, not simulation data, and
	// propagating a journal append's error would otherwise carry its
	// wall-stamp taint into every caller that stores or returns err.
	// The dangerous readbacks that return plain values (obs.WallNow,
	// runtrace.Totals) never reach this path: sourceOf matched them
	// above, before summaries were consulted.
	for i := range results {
		if i < sig.Results().Len() {
			if rt := sig.Results().At(i).Type(); w.opsNamedType(rt) || isErrorType(rt) {
				results[i].t = Taint{}
			}
		}
	}
	if len(results) == 0 {
		return nil
	}
	return results
}

// spread shapes one merged value to the call's result arity.
func (w *fnWalk) spread(call *ast.CallExpr, v val) []val {
	n := 1
	if tv, ok := w.p.pass.TypesInfo.Types[call]; ok {
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			n = tuple.Len()
		}
	}
	if n == 0 {
		return nil
	}
	results := make([]val, n)
	for i := range results {
		results[i] = v
	}
	return results
}

// opsDomainState reports whether parameter slot s of fn has a named type
// declared in a //flashvet:ops-domain package (per its exported package
// fact) other than the package under analysis.
func (w *fnWalk) opsDomainState(fn *types.Func, s int) bool {
	return w.opsNamedType(paramType(fn, s))
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// opsDomainPkg reports whether the package at path declared itself
// ops-domain (exported an OpsDomainFact).
func (w *fnWalk) opsDomainPkg(path string) bool {
	var f OpsDomainFact
	return w.p.pass.ImportPackageFact(path, &f) && f.Declared
}

// opsNamedType reports whether t (after unwrapping pointers) is a named
// type declared in an ops-domain package other than the one under
// analysis.
func (w *fnWalk) opsNamedType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg == w.p.pass.Pkg {
		return false
	}
	var f OpsDomainFact
	return w.p.pass.ImportPackageFact(pkg.Path(), &f) && f.Declared
}

// summaryOf finds the summary for fn: in-progress for this package's own
// functions, imported as a fact for dependencies (including facts-only
// packages and ops-domain packages — that import is the verification the
// waiver system was missing).
func (w *fnWalk) summaryOf(fn *types.Func) *FuncTaint {
	origin := fn.Origin()
	if sum, ok := w.p.sums[origin]; ok {
		return sum
	}
	var ft FuncTaint
	if w.p.pass.ImportObjectFact(origin, &ft) {
		return &ft
	}
	return nil
}

// displayName renders fn compactly: "(*enc).i64" in-package,
// "ops.Stamp" cross-package.
func displayName(pass *analysis.Pass, fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return "(" + types.TypeString(recv.Type(), types.RelativeTo(pass.Pkg)) + ")." + fn.Name()
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// growingAppend reports whether rhs is `append(base, ...)` growing lhs's
// own backing object — the self-append idiom whose element order is the
// enclosing iteration order. A keyed rebuild inside a map range
// (m[k] = append([]byte(nil), v...)) copies content addressed by the
// range key and is order-independent, so it carries no maporder taint.
func (w *fnWalk) growingAppend(lhs, rhs ast.Expr) bool {
	if !isAppend(w.p.pass, rhs) {
		return false
	}
	call := ast.Unparen(rhs).(*ast.CallExpr)
	if len(call.Args) == 0 {
		return false
	}
	base := w.rootObject(call.Args[0])
	return base != nil && base == w.rootObject(lhs)
}

func isAppend(pass *analysis.Pass, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
