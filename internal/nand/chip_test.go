package nand

import (
	"errors"
	"testing"
	"time"
)

func testGeometry() Geometry {
	return Geometry{
		Dies: 1, PlanesPerDie: 2, BlocksPerPlane: 8,
		PagesPerBlock: 16, PageSize: 4096, SpareSize: 128,
	}
}

func newTestChip(t *testing.T, mutate func(*Config)) *Chip {
	t.Helper()
	cfg := Config{Geometry: testGeometry(), Cell: MLC, Seed: 42}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestGeometryDerived(t *testing.T) {
	g := testGeometry()
	if g.Planes() != 2 || g.Blocks() != 16 || g.Pages() != 256 {
		t.Fatalf("planes/blocks/pages = %d/%d/%d, want 2/16/256", g.Planes(), g.Blocks(), g.Pages())
	}
	if g.BlockSize() != 16*4096 {
		t.Fatalf("BlockSize = %d", g.BlockSize())
	}
	if g.Capacity() != 16*16*4096 {
		t.Fatalf("Capacity = %d", g.Capacity())
	}
}

func TestGeometryValidate(t *testing.T) {
	cases := []func(*Geometry){
		func(g *Geometry) { g.Dies = 0 },
		func(g *Geometry) { g.PlanesPerDie = -1 },
		func(g *Geometry) { g.BlocksPerPlane = 0 },
		func(g *Geometry) { g.PagesPerBlock = 0 },
		func(g *Geometry) { g.PageSize = 1000 }, // not multiple of 512
		func(g *Geometry) { g.SpareSize = -1 },
	}
	for i, mutate := range cases {
		g := testGeometry()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
	g := testGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Geometry: testGeometry(), Cell: CellType(9)}); err == nil {
		t.Error("invalid cell type accepted")
	}
	if _, err := New(Config{Geometry: testGeometry(), Cell: MLC, RatedPE: -5}); err == nil {
		t.Error("negative RatedPE accepted")
	}
	if _, err := New(Config{Geometry: testGeometry(), Cell: MLC, StressSpread: 1.5}); err == nil {
		t.Error("StressSpread >= 1 accepted")
	}
	bad := ErrorModel{BaseRBER: 2}
	if _, err := New(Config{Geometry: testGeometry(), Cell: MLC, Errors: &bad}); err == nil {
		t.Error("invalid error model accepted")
	}
}

func TestCellTypeDefaults(t *testing.T) {
	if SLC.DefaultRatedPE() != 100_000 || MLC.DefaultRatedPE() != 3_000 || TLC.DefaultRatedPE() != 1_000 {
		t.Fatal("default rated P/E cycles do not match §2.1")
	}
	if SLC.BitsPerCell() != 1 || MLC.BitsPerCell() != 2 || TLC.BitsPerCell() != 3 {
		t.Fatal("bits per cell wrong")
	}
	if SLC.String() != "SLC" || MLC.String() != "MLC" || TLC.String() != "TLC" {
		t.Fatal("CellType.String wrong")
	}
	if CellType(0).Valid() || CellType(4).Valid() {
		t.Fatal("invalid cell types reported valid")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	c := newTestChip(t, nil)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := c.ProgramPage(PageAddr{0, 0}, data); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	got, res, err := c.ReadPage(PageAddr{0, 0})
	if err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if res.Latency != c.Timing().ReadPage {
		t.Errorf("read latency = %v, want %v", res.Latency, c.Timing().ReadPage)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, got[i], byte(i))
		}
	}
}

func TestAccountingWriteReturnsNoData(t *testing.T) {
	c := newTestChip(t, nil)
	if _, err := c.ProgramPage(PageAddr{1, 0}, nil); err != nil {
		t.Fatalf("ProgramPage(nil): %v", err)
	}
	data, _, err := c.ReadPage(PageAddr{1, 0})
	if err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if data != nil {
		t.Fatal("accounting-only page returned data")
	}
}

func TestSequentialProgrammingEnforced(t *testing.T) {
	c := newTestChip(t, nil)
	if _, err := c.ProgramPage(PageAddr{0, 1}, nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order program err = %v, want ErrOutOfOrder", err)
	}
	if _, err := c.ProgramPage(PageAddr{0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProgramPage(PageAddr{0, 0}, nil); !errors.Is(err, ErrNotErased) {
		t.Fatalf("reprogram err = %v, want ErrNotErased", err)
	}
}

func TestReadUnprogrammedPage(t *testing.T) {
	c := newTestChip(t, nil)
	if _, _, err := c.ReadPage(PageAddr{2, 0}); !errors.Is(err, ErrNotProgrammed) {
		t.Fatalf("err = %v, want ErrNotProgrammed", err)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	c := newTestChip(t, nil)
	data := make([]byte, 4096)
	if _, err := c.ProgramPage(PageAddr{0, 0}, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if c.EraseCount(0) != 1 {
		t.Fatalf("EraseCount = %d, want 1", c.EraseCount(0))
	}
	// Page 0 is programmable again and old data is gone.
	if _, err := c.ProgramPage(PageAddr{0, 0}, nil); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
	got, _, err := c.ReadPage(PageAddr{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("data survived erase")
	}
}

func TestAddressBounds(t *testing.T) {
	c := newTestChip(t, nil)
	for _, a := range []PageAddr{{-1, 0}, {16, 0}, {0, -1}, {0, 16}} {
		if _, err := c.ProgramPage(a, nil); !errors.Is(err, ErrAddr) {
			t.Errorf("ProgramPage(%v) err = %v, want ErrAddr", a, err)
		}
		if _, _, err := c.ReadPage(a); !errors.Is(err, ErrAddr) {
			t.Errorf("ReadPage(%v) err = %v, want ErrAddr", a, err)
		}
	}
	if _, err := c.EraseBlock(99); !errors.Is(err, ErrAddr) {
		t.Errorf("EraseBlock(99) err = %v, want ErrAddr", err)
	}
}

func TestBadBlockRejectsOps(t *testing.T) {
	c := newTestChip(t, nil)
	c.MarkBad(3)
	if !c.Bad(3) {
		t.Fatal("block 3 not bad after MarkBad")
	}
	if c.Stats().BadBlocks != 1 {
		t.Fatalf("BadBlocks = %d, want 1", c.Stats().BadBlocks)
	}
	c.MarkBad(3) // idempotent
	if c.Stats().BadBlocks != 1 {
		t.Fatal("MarkBad not idempotent")
	}
	if _, err := c.ProgramPage(PageAddr{3, 0}, nil); !errors.Is(err, ErrBadBlock) {
		t.Errorf("program bad block err = %v", err)
	}
	if _, _, err := c.ReadPage(PageAddr{3, 0}); !errors.Is(err, ErrBadBlock) {
		t.Errorf("read bad block err = %v", err)
	}
	if _, err := c.EraseBlock(3); !errors.Is(err, ErrBadBlock) {
		t.Errorf("erase bad block err = %v", err)
	}
}

func TestWearGrowsWithErases(t *testing.T) {
	c := newTestChip(t, func(cfg *Config) { cfg.RatedPE = 100; cfg.StressSpread = 0.0001 })
	for i := 0; i < 50; i++ {
		if _, err := c.EraseBlock(0); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	w := c.Wear(0)
	if w < 0.45 || w > 0.55 {
		t.Fatalf("Wear after 50/100 cycles = %v, want ~0.5", w)
	}
	if c.MaxWear() < c.AvgWear() {
		t.Fatal("MaxWear < AvgWear")
	}
}

func TestFreshChipIsReliable(t *testing.T) {
	c := newTestChip(t, nil)
	for b := 0; b < 4; b++ {
		for p := 0; p < 16; p++ {
			if _, err := c.ProgramPage(PageAddr{b, p}, nil); err != nil {
				t.Fatalf("fresh program %v failed: %v", PageAddr{b, p}, err)
			}
			if _, _, err := c.ReadPage(PageAddr{b, p}); err != nil {
				t.Fatalf("fresh read %v failed: %v", PageAddr{b, p}, err)
			}
		}
	}
	s := c.Stats()
	if s.ProgramFails != 0 || s.UncorrectableReads != 0 {
		t.Fatalf("fresh chip produced failures: %+v", s)
	}
}

func TestWornChipFails(t *testing.T) {
	// Push one block far past rated endurance; reads and programs there
	// must start failing.
	c := newTestChip(t, func(cfg *Config) { cfg.RatedPE = 20 })
	fails := 0
	for i := 0; i < 50; i++ { // 2.5x rated
		if _, err := c.EraseBlock(0); err != nil {
			fails++
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := c.ProgramPage(PageAddr{0, 0}, nil); err != nil {
			fails++
		}
		if _, err := c.EraseBlock(0); err != nil {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("block at 2.5x+ rated endurance never failed an operation")
	}
}

func TestStatsCount(t *testing.T) {
	c := newTestChip(t, nil)
	_, _ = c.ProgramPage(PageAddr{0, 0}, nil)
	_, _, _ = c.ReadPage(PageAddr{0, 0})
	_, _ = c.EraseBlock(0)
	s := c.Stats()
	if s.Programs != 1 || s.Reads != 1 || s.Erases != 1 {
		t.Fatalf("stats = %+v, want 1/1/1", s)
	}
	if s.BytesProgrammed != 4096 {
		t.Fatalf("BytesProgrammed = %d, want 4096", s.BytesProgrammed)
	}
}

func TestProgramWrongLength(t *testing.T) {
	c := newTestChip(t, nil)
	if _, err := c.ProgramPage(PageAddr{0, 0}, make([]byte, 100)); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestHealingReducesWear(t *testing.T) {
	now := time.Duration(0)
	em := DefaultErrorModel()
	em.HealPerIdleHour = 1 // one cycle healed per idle hour
	c := newTestChip(t, func(cfg *Config) {
		cfg.RatedPE = 100
		cfg.Errors = &em
		cfg.Now = func() time.Duration { return now }
		cfg.StressSpread = 0.0001
	})
	for i := 0; i < 40; i++ {
		if _, err := c.EraseBlock(0); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Wear(0)
	now += 10 * time.Hour // idle decade
	if _, err := c.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	after := c.Wear(0)
	if after >= before {
		t.Fatalf("wear did not heal: before %v after %v", before, after)
	}
}

func TestRetentionIncreasesErrors(t *testing.T) {
	em := DefaultErrorModel()
	if a, b := em.RBERWithRetention(0.9, 0), em.RBERWithRetention(0.9, 10_000); b <= a {
		t.Fatalf("retention did not increase RBER: %v vs %v", a, b)
	}
}

func TestErrorModelShape(t *testing.T) {
	em := DefaultErrorModel()
	if em.RBER(0.5) <= em.RBER(0) {
		t.Fatal("RBER not increasing in wear")
	}
	if em.RBER(10) > 0.5 {
		t.Fatal("RBER not clamped")
	}
	if em.FailProb(0) >= em.FailProb(1.5) {
		t.Fatal("FailProb not increasing")
	}
	if em.FailProb(100) != 1 {
		t.Fatal("FailProb not clamped to 1")
	}
}

func TestErrorModelValidate(t *testing.T) {
	bad := []ErrorModel{
		{BaseRBER: -1},
		{BaseRBER: 0.1, RBERGrowth: -1},
		{BaseRBER: 0.1, BaseFail: 2},
		{BaseRBER: 0.1, FailGrowth: -3},
		{BaseRBER: 0.1, RetentionRBERPerHour: -1},
		{BaseRBER: 0.1, HealPerIdleHour: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
	if err := DefaultErrorModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestTimingDefaultsOrdered(t *testing.T) {
	// Denser cells are slower to program.
	if !(DefaultTiming(SLC).ProgramPage < DefaultTiming(MLC).ProgramPage &&
		DefaultTiming(MLC).ProgramPage < DefaultTiming(TLC).ProgramPage) {
		t.Fatal("program latency should grow with density")
	}
	if err := (Timing{}).Validate(); err == nil {
		t.Fatal("zero timing accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		c := newTestChip(t, func(cfg *Config) { cfg.RatedPE = 25; cfg.Seed = 7 })
		for i := 0; i < 60; i++ {
			_, _ = c.EraseBlock(0)
			_, _ = c.ProgramPage(PageAddr{0, 0}, nil)
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different stats:\n%+v\n%+v", a, b)
	}
}

func TestPlaneStriping(t *testing.T) {
	g := testGeometry()
	if g.PlaneOf(0) == g.PlaneOf(1) {
		t.Fatal("consecutive blocks should land on different planes")
	}
}
