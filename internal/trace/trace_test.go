package trace

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"flashwear/internal/blockdev"
	"flashwear/internal/device"
	"flashwear/internal/simclock"
	"flashwear/internal/workload"
)

func recordAttack(t *testing.T) []Event {
	t.Helper()
	clock := simclock.New()
	dev, err := device.New(device.ProfileEMMC8().Scaled(512), clock)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(dev, clock)
	w := workload.NewDeviceWriter(rec, 4096, false, 3)
	w.RegionLen = rec.Size() / 8
	if _, err := w.Step(2 << 20); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

func TestRecorderCapturesEverything(t *testing.T) {
	events := recordAttack(t)
	if len(events) != 512+1 { // 512 x 4 KiB writes + 1 flush
		t.Fatalf("events = %d, want 513", len(events))
	}
	for i, e := range events[:512] {
		if e.Op != OpWrite || e.Len != 4096 {
			t.Fatalf("event %d = %+v", i, e)
		}
		if i > 0 && e.At < events[i-1].At {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
	if events[512].Op != OpFlush {
		t.Fatal("flush missing")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	events := recordAttack(t)
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("len = %d, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

// recordAllOps drives every op kind through a Recorder over a plain memory
// device and returns it.
func recordAllOps(t *testing.T) *Recorder {
	t.Helper()
	mem, err := blockdev.NewMem(1<<20, 512)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(mem, simclock.New())
	buf := make([]byte, 4096)
	if err := rec.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteAccounted(8192, 4096); err != nil {
		t.Fatal(err)
	}
	if err := rec.ReadAt(buf[:2048], 0); err != nil {
		t.Fatal(err)
	}
	if err := rec.Discard(0, 4096); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestSerializationRoundTripAllOps(t *testing.T) {
	events := recordAllOps(t).Events()
	kinds := map[Op]bool{}
	for _, e := range events {
		kinds[e.Op] = true
	}
	for _, op := range []Op{OpWrite, OpRead, OpDiscard, OpFlush} {
		if !kinds[op] {
			t.Fatalf("trace is missing op %v", op)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("len = %d, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestRecorderStats(t *testing.T) {
	st := recordAllOps(t).Stats()
	want := Stats{
		Writes: 2, Reads: 1, Discards: 1, Flushes: 1,
		BytesWritten: 8192, BytesRead: 2048, BytesDiscarded: 4096,
	}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
	if st.Events() != 5 {
		t.Fatalf("Events = %d, want 5", st.Events())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v", err)
	}
	var buf bytes.Buffer
	_ = Write(&buf, []Event{{Op: OpWrite, Len: 4096}})
	b := buf.Bytes()
	b[12] = 99 // corrupt the op
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrFormat) {
		t.Fatalf("corrupt op err = %v", err)
	}
	if _, err := Read(bytes.NewReader(b[:20])); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated err = %v", err)
	}
}

func TestReplayAcrossDevices(t *testing.T) {
	events := recordAttack(t)
	// Replay the eMMC-recorded trace on the slower Moto E.
	clock := simclock.New()
	target, err := device.New(device.ProfileMotoE8().Scaled(512), clock)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Replay(target, clock, events, ReplayOptions{StopOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != len(events) || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWritten != 2<<20 {
		t.Fatalf("BytesWritten = %d", st.BytesWritten)
	}
	if target.BytesWritten() != 2<<20 {
		t.Fatal("target device did not receive the trace")
	}
	if st.Elapsed <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestReplayPreservesTiming(t *testing.T) {
	// A trace with a long idle gap: timed replay keeps the gap, untimed
	// collapses it.
	events := []Event{
		{At: 0, Op: OpWrite, Off: 0, Len: 4096},
		{At: time.Hour, Op: OpWrite, Off: 4096, Len: 4096},
	}
	run := func(preserve bool) time.Duration {
		clock := simclock.New()
		dev, err := device.New(device.ProfileEMMC8().Scaled(512), clock)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Replay(dev, clock, events, ReplayOptions{PreserveTiming: preserve})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	timed, untimed := run(true), run(false)
	if timed < time.Hour {
		t.Fatalf("timed replay took %v, want >= 1h", timed)
	}
	if untimed > time.Minute {
		t.Fatalf("untimed replay took %v, want ~instant", untimed)
	}
}

func TestReplayWrapsOversizedOffsets(t *testing.T) {
	events := []Event{{Op: OpWrite, Off: 1 << 40, Len: 4096}}
	clock := simclock.New()
	dev, err := device.New(device.ProfileEMMC8().Scaled(512), clock)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev, clock, events, ReplayOptions{StopOnError: true})
	if err != nil {
		t.Fatalf("oversized offset not wrapped: %v", err)
	}
	if st.Errors != 0 {
		t.Fatal("errors counted")
	}
}

func TestReplayContinuesPastErrors(t *testing.T) {
	mem, _ := blockdev.NewMem(1<<20, 512)
	faulty := blockdev.NewFaulty(mem, 2)
	clock := simclock.New()
	events := []Event{
		{Op: OpWrite, Off: 0, Len: 4096},
		{Op: OpWrite, Off: 4096, Len: 4096},
		{Op: OpWrite, Off: 8192, Len: 4096},
	}
	st, err := Replay(faulty, clock, events, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 1 || st.Events != 3 {
		t.Fatalf("stats = %+v, want 1 error of 3 events", st)
	}
	if _, err := Replay(faulty, clock, events, ReplayOptions{StopOnError: true}); err == nil {
		t.Fatal("StopOnError did not stop")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpWrite: "write", OpRead: "read", OpDiscard: "discard", OpFlush: "flush", Op(9): "Op(9)"} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
}
