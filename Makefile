GO ?= go

.PHONY: all build vet test race bench faults check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# A short -race pass over the one concurrent subsystem: the fleet
# determinism test runs the same 64-device population at 4 workers and at
# 1 and requires byte-identical aggregates (DESIGN.md §6).
race:
	$(GO) test -race -count=1 -run TestFleet ./internal/fleet/

# The fault matrix under -race: randomized power-cut/remount recovery,
# program/erase-failure handling, graceful EOL, the faulty-flash crash
# suites for both file systems, and the fleet's fault-plan/panic paths
# (DESIGN.md §8).
faults:
	$(GO) test -race -count=1 \
		-run 'TestRecover|TestProgramFailures|TestGraceful|TestBrickAtEOL|TestEOLSpare|TestQuickRemount|TestCrashConformanceOnFaultyFlash|TestFleetFaultPlan|TestFleetPanic|TestInjector' \
		./internal/ftl/ ./internal/faultinject/ ./internal/fleet/ \
		./internal/fs/extfs/ ./internal/fs/f2fs/

# One pass over every benchmark (each regenerates a paper exhibit);
# -benchtime=1x keeps it a smoke run. Drop the flag for real timings.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem .

# The verification entrypoint: everything CI (or a reviewer) should run.
check: vet build test race faults
