package fleetd

// Execution-tracing pins (DESIGN.md §14). The load-bearing invariant is
// negative: recording wall-clock spans must be invisible in every
// determinism fingerprint — including under host-fault injection and
// crash/resume — while the positive checks require the trace itself to
// be well-formed and to reconcile with the /metrics phase histograms.

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flashwear/internal/runtrace"
)

// runTraced runs spec to completion on a fresh manager whose tracer is
// recording from before the submit, so every span of the run lands in
// the buffer.
func runTraced(t *testing.T, dataDir string, spec CampaignSpec) (*Manager, *Campaign) {
	t.Helper()
	m, err := NewManager(dataDir)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	m.Trace().StartRecording()
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	m.Trace().StopRecording()
	return m, c
}

// TestTracingInvisibleInResults is the core §14 pin: a campaign run with
// span recording on produces series/ledger/aggregate bytes identical to
// an untraced run, and the trace is non-trivially populated.
func TestTracingInvisibleInResults(t *testing.T) {
	spec := tinySpec()
	spec.Shards = 2
	spec.CheckpointEvery = 2
	spec.Faults = "read=2e-4,cut-every=3000000"
	ref := fingerprint(t, runToEnd(t, t.TempDir(), spec))

	m, c := runTraced(t, t.TempDir(), spec)
	if got := fingerprint(t, c); !bytes.Equal(ref, got) {
		t.Fatal("tracing-on fingerprint differs from tracing-off run")
	}
	if n := m.Trace().SpanCount(); n == 0 {
		t.Fatal("traced run recorded no spans")
	}
	tot := m.Trace().Totals()
	// 4 devices x 3 epochs (5 days at cadence 2) = 12 device-epochs.
	if got := tot[runtrace.PhaseSimulate].Count; got != 12 {
		t.Errorf("simulate span count = %d, want 12", got)
	}
	for _, p := range []runtrace.Phase{
		runtrace.PhaseCheckpointEncode, runtrace.PhaseCheckpointFsync,
		runtrace.PhaseJournal, runtrace.PhaseAggregate, runtrace.PhaseAlertEval,
	} {
		if tot[p].Count == 0 {
			t.Errorf("phase %s recorded no spans", p)
		}
	}
}

// TestTracingInvisibleUnderHostFaults repeats the pin over a fault-
// injecting filesystem: retries and degraded checkpointing add extra
// spans, and still nothing leaks into the results.
func TestTracingInvisibleUnderHostFaults(t *testing.T) {
	spec := tortureSpec()
	ref := fingerprint(t, runToEnd(t, t.TempDir(), spec))

	m := tortureManager(t, t.TempDir(), "seed=7,class=checkpoint,fault=enospc,on=write,p=0.3|class=journal,fault=torn,on=write,p=0.3")
	m.Trace().StartRecording()
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit under faults: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed under faults: %v", err)
	}
	if got := fingerprint(t, c); !bytes.Equal(ref, got) {
		t.Fatal("tracing-on fingerprint differs under host faults")
	}
	if m.Trace().SpanCount() == 0 {
		t.Fatal("traced faulted run recorded no spans")
	}
}

// TestTracingInvisibleAcrossCrashResume interrupts a recording run,
// adopts the directory with a fresh (also recording) manager, resumes,
// and requires byte-identical results to an untraced clean run.
func TestTracingInvisibleAcrossCrashResume(t *testing.T) {
	spec := tinySpec()
	spec.Shards = 2
	spec.CheckpointEvery = 2
	ref := fingerprint(t, runToEnd(t, t.TempDir(), spec))

	dir := t.TempDir()
	m1, err := NewManager(dir)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	m1.Trace().StartRecording()
	c1, err := m1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	interrupt(c1)
	m2, err := NewManager(dir)
	if err != nil {
		t.Fatalf("NewManager (restart): %v", err)
	}
	m2.Trace().StartRecording()
	c2, ok := m2.Get(c1.ID())
	if !ok {
		t.Fatalf("restarted manager did not adopt campaign %s", c1.ID())
	}
	if err := c2.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := c2.Wait(); err != nil {
		t.Fatalf("resumed campaign failed: %v", err)
	}
	if got := fingerprint(t, c2); !bytes.Equal(ref, got) {
		t.Fatal("tracing-on crash/resume fingerprint differs from clean untraced run")
	}
}

// chromePhases sums the 'X' spans of a Chrome trace by phase name.
func chromePhases(t *testing.T, raw []byte) (count map[string]int64, micros map[string]int64) {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	count, micros = map[string]int64{}, map[string]int64{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			count[e.Name]++
			micros[e.Name] += e.Dur
		}
	}
	return count, micros
}

// TestPhaseTotalsReconcile is the acceptance-criteria cross-check: for a
// run recorded end to end, the Chrome trace's per-phase totals, the
// tracer's integer-nanosecond totals, and the fleetd_phase_seconds
// histograms must all tell the same story.
func TestPhaseTotalsReconcile(t *testing.T) {
	spec := tinySpec()
	spec.Shards = 2
	spec.CheckpointEvery = 2
	m, _ := runTraced(t, t.TempDir(), spec)

	totals := m.Trace().Totals()
	var buf bytes.Buffer
	if err := m.Trace().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	counts, micros := chromePhases(t, buf.Bytes())

	for p := runtrace.Phase(0); p < runtrace.NumPhases; p++ {
		name := p.String()
		// Tracer totals vs histogram: same observations, one summed as
		// int64 ns, one as float64 seconds — equal up to float rounding.
		h := m.metrics.phase[p]
		if got, want := int64(h.Count()), totals[p].Count; got != want {
			t.Errorf("phase %s: histogram count %d != tracer count %d", name, got, want)
		}
		if diff := math.Abs(h.Sum() - totals[p].Seconds()); diff > 1e-6*float64(totals[p].Count)+1e-9 {
			t.Errorf("phase %s: histogram sum %.9fs != tracer total %.9fs (diff %.9g)",
				name, h.Sum(), totals[p].Seconds(), diff)
		}
		// Chrome trace vs tracer totals: recording covered the whole
		// run, so counts match exactly; durations truncate to whole
		// microseconds per span.
		if got, want := counts[name], totals[p].Count; got != want {
			t.Errorf("phase %s: chrome span count %d != tracer count %d", name, got, want)
		}
		traceSec := float64(micros[name]) / 1e6
		slack := float64(totals[p].Count+1) / 1e6 // 1µs truncation per span
		if diff := math.Abs(traceSec - totals[p].Seconds()); diff > slack {
			t.Errorf("phase %s: chrome total %.9fs vs tracer total %.9fs (diff %.9g > slack %.9g)",
				name, traceSec, totals[p].Seconds(), diff, slack)
		}
	}
}

// TestTraceHTTPEndpoints drives the ops-plane trace window over HTTP:
// status → start → (campaign runs) → stop → fetch, plus the pprof mounts.
func TestTraceHTTPEndpoints(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	getStatus := func(path, method string) TraceStatus {
		t.Helper()
		req, _ := http.NewRequest(method, srv.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: status %d", method, path, resp.StatusCode)
		}
		var st TraceStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, path, err)
		}
		return st
	}

	if st := getStatus("/v1/trace/status", http.MethodGet); st.Recording {
		t.Fatal("recording before start")
	}
	if st := getStatus("/v1/trace/start", http.MethodPost); !st.Recording {
		t.Fatal("start did not begin recording")
	}

	spec := tinySpec()
	spec.CheckpointEvery = 2
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}

	st := getStatus("/v1/trace/stop", http.MethodPost)
	if st.Recording {
		t.Fatal("stop did not end recording")
	}
	if st.Spans == 0 {
		t.Fatal("no spans captured over HTTP window")
	}
	if len(st.Phases) != int(runtrace.NumPhases) {
		t.Fatalf("status has %d phases, want %d", len(st.Phases), runtrace.NumPhases)
	}

	resp, err := http.Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatalf("GET /v1/trace: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace Content-Type = %q, want application/json", ct)
	}
	counts, _ := chromePhases(t, raw)
	if counts["simulate"] == 0 {
		t.Fatalf("fetched trace has no simulate spans: %s", string(raw[:min(len(raw), 200)]))
	}

	// pprof is mounted on the same plane.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}
	// The index page lists the runtime profiles.
	resp2, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	idx, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(idx), "goroutine") {
		t.Error("pprof index does not list the goroutine profile")
	}
}

// BenchmarkRuntraceOverhead measures the campaign cell loop with span
// recording off (production default: totals + histograms only) and on
// (full span capture), the numbers behind the <2% overhead budget in
// BENCH_fleetd.json. Compare with: go test -bench RuntraceOverhead.
func BenchmarkRuntraceOverhead(b *testing.B) {
	spec := tinySpec()
	spec.Days = 3
	spec.CheckpointEvery = 0
	run := func(b *testing.B, record bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := NewManager("")
			if err != nil {
				b.Fatal(err)
			}
			if record {
				m.Trace().StartRecording()
			}
			c, err := m.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(spec.Devices*spec.Days)*float64(b.N)/b.Elapsed().Seconds(), "devicedays/s")
	}
	b.Run("recording-off", func(b *testing.B) { run(b, false) })
	b.Run("recording-on", func(b *testing.B) { run(b, true) })
}
