// Package blockdev defines the block-device abstraction the file systems
// and workloads are written against, plus in-memory and instrumented
// implementations for testing.
//
// Offsets and lengths are byte-addressed; implementations declare a sector
// size and may reject unaligned access. WriteAccounted supports the wear
// experiments: it behaves like WriteAt for accounting purposes (wear, cost,
// timing) without retaining a payload, so device-scale experiments don't
// hold gigabytes of simulated data in memory.
package blockdev

import (
	"errors"
	"fmt"
)

// Errors common to implementations.
var (
	ErrAlignment = errors.New("blockdev: unaligned access")
	ErrBounds    = errors.New("blockdev: access beyond device size")
)

// Device is a byte-addressed block device.
type Device interface {
	// ReadAt fills p from the device at off. Unwritten areas read as
	// zeroes.
	ReadAt(p []byte, off int64) error
	// WriteAt stores p at off.
	WriteAt(p []byte, off int64) error
	// WriteAccounted performs an accounting-only write of length bytes at
	// off: same wear and timing as WriteAt, no payload retained. Reading
	// the range later returns zeroes.
	WriteAccounted(off, length int64) error
	// Discard drops the given range (TRIM).
	Discard(off, length int64) error
	// Flush is a write barrier.
	Flush() error
	// Size returns the device capacity in bytes.
	Size() int64
	// SectorSize returns the minimum access granularity in bytes.
	SectorSize() int
}

// CheckRange validates an access against a device's size and sector size.
func CheckRange(d Device, off, length int64) error {
	ss := int64(d.SectorSize())
	if off%ss != 0 || length%ss != 0 {
		return fmt.Errorf("%w: off=%d len=%d sector=%d", ErrAlignment, off, length, ss)
	}
	if off < 0 || length < 0 || off+length > d.Size() {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrBounds, off, length, d.Size())
	}
	return nil
}
