// Package flashvet assembles the flashwear analyzer suite and implements
// the cmd/flashvet entry point, which runs in two modes:
//
//   - standalone: `flashvet ./...` — enumerate, type-check, and analyze
//     packages in the current module; what `make lint` runs.
//   - vet tool: `go vet -vettool=$(go env GOPATH)/bin/flashvet ./...` —
//     speak cmd/go's vettool protocol (-V=full, -flags, then one vet.cfg
//     per package), which adds go vet's per-package caching and covers
//     _test.go variants with exact build metadata.
package flashvet

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"flashwear/internal/analysis"
	"flashwear/internal/analysis/passes/floataccum"
	"flashwear/internal/analysis/passes/globalrand"
	"flashwear/internal/analysis/passes/locksafe"
	"flashwear/internal/analysis/passes/maporder"
	"flashwear/internal/analysis/passes/opserrcheck"
	"flashwear/internal/analysis/passes/simtaint"
	"flashwear/internal/analysis/passes/wallclock"
)

// All returns the full suite: the five syntactic invariants DESIGN.md
// §10 documents, the cross-package taint analysis that backs them with
// data flow (§15), and the fleetd lock-discipline check.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		wallclock.Analyzer,
		globalrand.Analyzer,
		maporder.Analyzer,
		floataccum.Analyzer,
		opserrcheck.Analyzer,
		simtaint.Analyzer,
		locksafe.Analyzer,
	}
}

// Main implements cmd/flashvet; it returns the process exit code:
// 0 clean, 1 usage or internal failure, 2 findings.
func Main(args []string) int {
	suite := All()

	fs := flag.NewFlagSet("flashvet", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: flashvet [-analyzer...] [package pattern ...]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=/path/to/flashvet [-analyzer...] ./...\n\nanalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(fs.Output(), "  -%s\t%s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	version := fs.String("V", "", "print version and exit (-V=full, for the go command)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (for the go command)")
	waivers := fs.Bool("waivers", false, "audit mode: list every ignore directive and ops-domain declaration, sorted, and exit")
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, false, strings.SplitN(a.Doc, "\n", 2)[0])
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *version != "":
		// cmd/go (Builder.toolID) demands `<name> version devel ...
		// buildID=<content-id>` and caches vet results under the content
		// id, so hash the binary itself: rebuilding flashvet invalidates
		// prior runs.
		if *version != "full" {
			fmt.Fprintf(os.Stderr, "flashvet: unsupported -V=%s\n", *version)
			return 1
		}
		fmt.Printf("flashvet version devel buildID=%s\n", selfHash())
		return 0
	case *printFlags:
		// cmd/go merges these into `go vet`'s own flag set.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range suite {
			out = append(out, jsonFlag{a.Name, true, strings.SplitN(a.Doc, "\n", 2)[0]})
		}
		data, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
			return 1
		}
		os.Stdout.Write(data)
		return 0
	}

	// Honor go vet's analyzer-selection convention: naming any analyzer
	// runs just those; naming none runs the whole suite. The unused-ignore
	// check needs the full suite (a directive for a disabled analyzer
	// would look unused), so it is on only then.
	var run []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	checkUnusedIgnores := len(run) == 0
	if len(run) == 0 {
		run = suite
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.RunVetTool(run, rest[0], checkUnusedIgnores)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *waivers {
		return auditWaivers(patterns)
	}
	pkgs, fset, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	findings, err := analysis.Run(fset, pkgs, run, checkUnusedIgnores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "flashvet: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}

// auditWaivers implements -waivers: a stable, diffable listing of every
// place the suite is told to look away — one line per //flashvet:ignore
// and //flashvet:ops-domain, with file:line and the mandatory reason.
// CI diffs this output against the committed lint_waivers.txt baseline,
// so adding a waiver means changing a reviewed file, not just typing a
// comment. Paths print relative to the working directory so the
// baseline is position-independent.
func auditWaivers(patterns []string) int {
	pkgs, fset, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, w := range analysis.Waivers(fset, pkgs) {
		if rel, err := filepath.Rel(cwd, w.File); err == nil && !strings.HasPrefix(rel, "..") {
			w.File = filepath.ToSlash(rel)
		}
		fmt.Println(w)
	}
	return 0
}

// selfHash content-addresses the running binary (cf. x/tools unitchecker).
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
