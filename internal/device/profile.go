// Package device models complete mobile storage devices — eMMC and UFS
// packages and MicroSD cards — by combining a NAND chip (or two, for hybrid
// parts), the FTL, and a controller timing model. Profiles calibrated to the
// paper's seven evaluation devices reproduce both the bandwidth curves of
// Figure 1 and the wear-out magnitudes of Figures 2–4 and Table 1.
package device

import (
	"fmt"
	"time"

	"flashwear/internal/faultinject"
	"flashwear/internal/nand"
)

// Kind is the storage interface family.
type Kind int

const (
	KindEMMC Kind = iota // soldered-down managed NAND, page-mapped FTL
	KindUFS              // eMMC's successor: faster interface, deeper parallelism
	KindUSD              // removable MicroSD: tiny controller, block-mapped FTL
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindEMMC:
		return "eMMC"
	case KindUFS:
		return "UFS"
	case KindUSD:
		return "uSD"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// HybridProfile describes a Type A (SLC-mode) cache in front of the main
// array.
type HybridProfile struct {
	// CacheBytes is the Type A capacity.
	CacheBytes int64
	// CacheRatedPE is Type A's rated endurance.
	CacheRatedPE int
	// DrainRatio is the cache-to-main migration budget in pages per host
	// page under sustained load; it sets the fraction of traffic the
	// cache absorbs before the pools merge (Table 1's ~6x wear ratio).
	DrainRatio float64
	// RouteMaxBytes: larger host writes bypass the cache entirely.
	RouteMaxBytes int
	// MergeUtilisation is the exported-space utilisation beyond which the
	// firmware merges the pools (§4.3).
	MergeUtilisation float64
}

// Profile is a calibrated device description. All capacities are user-data
// bytes; the geometry is derived.
type Profile struct {
	Name string
	Kind Kind

	// Flash array.
	CapacityBytes int64
	Cell          nand.CellType
	RatedPE       int // actual cell endurance the wear physics uses
	PageSize      int
	PagesPerBlock int
	Parallelism   int // concurrently programmable planes (bandwidth width)

	// FTL behaviour.
	OverProvision   float64
	FirmwareRatedPE int // life-time indicator denominator (0 = RatedPE)
	WearLeveling    bool
	Hybrid          *HybridProfile

	// Controller and interface timing.
	CmdOverhead   time.Duration // per-request controller/command latency
	InterfaceMBps float64       // host interface bandwidth
	ProgramTime   time.Duration // per-page program (0 = cell default)
	ReadTime      time.Duration // per-page read (0 = cell default)
	EraseTime     time.Duration // per-block erase (0 = cell default)

	// Block-mapped quirks (MicroSD): a non-append write inside an
	// allocation unit forces the controller to copy the whole AU.
	AllocationUnit int64

	// HealPerIdleHour enables the self-healing extension (§2.2: "flash
	// can heal as trapped charge dissipates"): each block recovers this
	// many effective P/E cycles per simulated hour it sits idle between
	// erases. Zero (the default, and reality for shipping firmware)
	// disables it.
	HealPerIdleHour float64

	// UnreliableIndicator mimics the two BLU budget phones whose eMMC
	// "did not provide reliable wear-out indications": the life-time
	// registers read as garbage even while the device wears normally.
	UnreliableIndicator bool

	// BrickAtEOL makes endurance exhaustion a hard brick (the paper's BLU
	// phones) instead of the default JEDEC-style read-only retirement.
	BrickAtEOL bool

	// Faults, when non-nil and non-empty, attaches a deterministic fault
	// injector (transient read errors, program/erase failures, power
	// cuts) to the device's chips. Nil costs the hot path nothing.
	Faults *faultinject.Plan

	// Seed makes the device deterministic.
	Seed int64
}

// Validate reports the first invalid field.
func (p Profile) Validate() error {
	switch {
	case p.CapacityBytes <= 0:
		return fmt.Errorf("device: %s: CapacityBytes = %d", p.Name, p.CapacityBytes)
	case !p.Cell.Valid():
		return fmt.Errorf("device: %s: invalid cell type", p.Name)
	case p.RatedPE <= 0:
		return fmt.Errorf("device: %s: RatedPE = %d", p.Name, p.RatedPE)
	case p.PageSize <= 0 || p.PageSize%512 != 0:
		return fmt.Errorf("device: %s: PageSize = %d", p.Name, p.PageSize)
	case p.PagesPerBlock <= 0:
		return fmt.Errorf("device: %s: PagesPerBlock = %d", p.Name, p.PagesPerBlock)
	case p.Parallelism <= 0:
		return fmt.Errorf("device: %s: Parallelism = %d", p.Name, p.Parallelism)
	case p.InterfaceMBps <= 0:
		return fmt.Errorf("device: %s: InterfaceMBps = %g", p.Name, p.InterfaceMBps)
	case p.CmdOverhead < 0:
		return fmt.Errorf("device: %s: CmdOverhead = %v", p.Name, p.CmdOverhead)
	case p.OverProvision < 0 || p.OverProvision >= 0.5:
		return fmt.Errorf("device: %s: OverProvision = %g", p.Name, p.OverProvision)
	}
	if p.Hybrid != nil && p.Hybrid.CacheBytes <= 0 {
		return fmt.Errorf("device: %s: hybrid CacheBytes = %d", p.Name, p.Hybrid.CacheBytes)
	}
	return nil
}

// Scaled returns a copy of the profile with capacity (and cache) divided by
// div, for fast experiments. Endurance, page geometry, and timing are
// untouched, so wear per *scaled* GiB and all bandwidths are preserved;
// experiment results multiply I/O volumes back by div. Scaled panics on a
// non-positive divisor.
func (p Profile) Scaled(div int64) Profile {
	if div <= 0 {
		panic(fmt.Sprintf("device: Scaled(%d): divisor must be positive", div))
	}
	blockBytes := int64(p.PageSize) * int64(p.PagesPerBlock)
	q := p
	q.CapacityBytes = p.CapacityBytes / div
	// Keep at least 64 blocks so garbage collection and its watermarks
	// have room to operate; callers must derive the effective divisor
	// from the returned capacity (see EffectiveScale).
	if min := 64 * blockBytes; q.CapacityBytes < min {
		q.CapacityBytes = min
	}
	if p.Hybrid != nil {
		h := *p.Hybrid
		h.CacheBytes = p.Hybrid.CacheBytes / div
		if min := 4 * blockBytes; h.CacheBytes < min {
			h.CacheBytes = min
		}
		q.Hybrid = &h
	}
	return q
}

// EffectiveScale returns the divisor that Scaled(div) actually achieved
// after clamping — the factor experiment results must be multiplied by.
func (p Profile) EffectiveScale(div int64) int64 {
	s := p.Scaled(div)
	eff := p.CapacityBytes / s.CapacityBytes
	if eff < 1 {
		eff = 1
	}
	return eff
}

// geometry derives the NAND geometry for a capacity.
func (p Profile) geometry(capacity int64) nand.Geometry {
	blockBytes := int64(p.PageSize) * int64(p.PagesPerBlock)
	blocks := int(capacity / blockBytes)
	planes := p.Parallelism
	if blocks < planes {
		planes = 1
	}
	bpp := blocks / planes
	if bpp < 1 {
		bpp = 1
	}
	return nand.Geometry{
		Dies:           1,
		PlanesPerDie:   planes,
		BlocksPerPlane: bpp,
		PagesPerBlock:  p.PagesPerBlock,
		PageSize:       p.PageSize,
		SpareSize:      p.PageSize / 32,
	}
}

// timing returns the chip timing, applying profile overrides.
func (p Profile) timing() nand.Timing {
	t := nand.DefaultTiming(p.Cell)
	if p.ProgramTime > 0 {
		t.ProgramPage = p.ProgramTime
	}
	if p.ReadTime > 0 {
		t.ReadPage = p.ReadTime
	}
	if p.EraseTime > 0 {
		t.EraseBlock = p.EraseTime
	}
	return t
}
