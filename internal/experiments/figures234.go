package experiments

import (
	"flashwear/internal/android"
	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/ftl"
)

// WearRun pairs a configuration label with its wear report.
type WearRun struct {
	Label  string
	Report core.RunReport
}

// Figure2 reproduces Figure 2: the host I/O volume needed to increment the
// wear-out indicator on the two external eMMC chips, under the paper's
// 4 KiB random rewrites of four 100 MB files (through an ext4-like FS on
// the Linux host, as in §4.1).
func Figure2(cfg Config) ([]WearRun, error) {
	cfg = cfg.Defaults()
	var out []WearRun
	for _, prof := range []device.Profile{device.ProfileEMMC8(), device.ProfileEMMC16()} {
		cfg.Progress("figure 2: wearing out %s", prof.Name)
		rep, err := runFileWear(prof, android.FSExt4, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, WearRun{Label: prof.Name, Report: rep})
	}
	return out, nil
}

// Figure4 reproduces Figure 4: host I/O per indicator increment on two
// Moto E phones, one on ext4 and one on F2FS. The F2FS volume should be
// roughly half (its node writes double the I/O reaching flash).
func Figure4(cfg Config) ([]WearRun, error) {
	cfg = cfg.Defaults()
	var out []WearRun
	for _, kind := range []android.FSKind{android.FSExt4, android.FSF2FS} {
		cfg.Progress("figure 4: Moto E 8GB on %s", kind)
		rep, err := runFileWear(device.ProfileMotoE8(), kind, cfg)
		if err != nil {
			return nil, err
		}
		label := "Moto E 8GB Ext4"
		if kind == android.FSF2FS {
			label = "Moto E 8GB F2FS"
		}
		out = append(out, WearRun{Label: label, Report: rep})
	}
	return out, nil
}

// Figure3Config is one bar group of Figure 3.
type Figure3Config struct {
	Label   string
	Profile device.Profile
	FS      android.FSKind
}

// Figure3Configs returns the five configurations plotted in Figure 3.
func Figure3Configs() []Figure3Config {
	return []Figure3Config{
		{"eMMC 8GB", device.ProfileEMMC8(), android.FSExt4},
		{"eMMC 16GB", device.ProfileEMMC16(), android.FSExt4},
		{"Moto E 8GB", device.ProfileMotoE8(), android.FSExt4},
		{"Moto E 8GB F2FS", device.ProfileMotoE8(), android.FSF2FS},
		{"Samsung S6 32GB", device.ProfileSamsungS6(), android.FSExt4},
	}
}

// Figure3 reproduces Figure 3: the time (hours) to increment the wear-out
// indicator for the two phones and two external chips, running the attack
// workload at full device rate.
func Figure3(cfg Config) ([]WearRun, error) {
	cfg = cfg.Defaults()
	var out []WearRun
	for _, fc := range Figure3Configs() {
		cfg.Progress("figure 3: %s", fc.Label)
		rep, err := runFileWear(fc.Profile, fc.FS, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, WearRun{Label: fc.Label, Report: rep})
	}
	return out, nil
}

// TLCTrend is the §1 technology-trend extension: the eMMC 8GB profile
// rebuilt with TLC cells, run through the Figure 2 workload. Denser cells
// wear out in a fraction of the MLC volume.
func TLCTrend(cfg Config) (WearRun, error) {
	cfg = cfg.Defaults()
	cfg.Progress("TLC trend: wearing out %s", device.ProfileEMMC8TLC().Name)
	rep, err := runFileWear(device.ProfileEMMC8TLC(), android.FSExt4, cfg)
	if err != nil {
		return WearRun{}, err
	}
	return WearRun{Label: device.ProfileEMMC8TLC().Name, Report: rep}, nil
}

// BrickRun is the budget-phone experiment of §4.4: no usable wear
// indicator, but the phone bricks within two weeks.
type BrickRun struct {
	Label         string
	Days          float64
	HostGiB       float64
	IndicatorSeen bool // whether the register ever gave in-spec readings
}

// BudgetPhones runs the attack on the two BLU phones until they brick.
func BudgetPhones(cfg Config) ([]BrickRun, error) {
	cfg = cfg.Defaults()
	var out []BrickRun
	for _, prof := range []device.Profile{device.ProfileBLU512(), device.ProfileBLU4()} {
		cfg.Progress("budget phones: %s", prof.Name)
		dev, clock, eff, err := newDevice(prof, cfg.Scale)
		if err != nil {
			return nil, err
		}
		fsys, err := mountFS(dev, android.FSExt4)
		if err != nil {
			return nil, err
		}
		set := newAttackSet(fsys, eff)
		// The BLU 512MB is too small for 4 x 100 MB; shrink the set as
		// the authors must have (<3% of capacity).
		fitFileSet(set, dev.Size())
		if err := set.Setup(); err != nil {
			return nil, err
		}
		runner := core.NewRunner(dev, clock, eff)
		runner.Pattern = "4 KiB rand rewrite"
		inSpec := false
		if err := runner.RunPhase(func(b int64) (int64, error) {
			if v := dev.WearIndicator(ftl.PoolB); v >= 1 && v <= 11 {
				// Garbage registers occasionally land in range; real
				// in-spec behaviour would be consistent, so sample twice.
				if v2 := dev.WearIndicator(ftl.PoolB); v2 == v {
					inSpec = true
				}
			}
			return set.Step(b)
		}, 0, nil); err != nil {
			return nil, err
		}
		rep := runner.Report()
		out = append(out, BrickRun{
			Label:         prof.Name,
			Days:          rep.TotalHours / 24,
			HostGiB:       rep.TotalHostGiB,
			IndicatorSeen: inSpec,
		})
	}
	return out, nil
}
