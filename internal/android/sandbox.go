package android

import (
	"flashwear/internal/fs"
)

// sandboxFS is the view an app gets of storage: its private directory,
// reachable with no permissions at all (§4.4: "our application required no
// special permissions"), with every operation accounted to the app.
type sandboxFS struct {
	phone *Phone
	app   string
	root  string // e.g. "/data/com.example.wear"
}

func (s *sandboxFS) path(p string) string { return s.root + "/" + trimSlashes(p) }

func trimSlashes(p string) string {
	for len(p) > 0 && p[0] == '/' {
		p = p[1:]
	}
	return p
}

// Name implements fs.FileSystem.
func (s *sandboxFS) Name() string { return s.phone.fsys.Name() }

// Create implements fs.FileSystem.
func (s *sandboxFS) Create(path string) (fs.File, error) {
	f, err := s.phone.fsys.Create(s.path(path))
	if err != nil {
		return nil, err
	}
	return &sandboxFile{File: f, phone: s.phone, app: s.app}, nil
}

// Open implements fs.FileSystem.
func (s *sandboxFS) Open(path string) (fs.File, error) {
	f, err := s.phone.fsys.Open(s.path(path))
	if err != nil {
		return nil, err
	}
	return &sandboxFile{File: f, phone: s.phone, app: s.app}, nil
}

// Remove implements fs.FileSystem.
func (s *sandboxFS) Remove(path string) error { return s.phone.fsys.Remove(s.path(path)) }

// Rename implements fs.FileSystem; both paths are confined to the sandbox.
func (s *sandboxFS) Rename(oldPath, newPath string) error {
	return s.phone.fsys.Rename(s.path(oldPath), s.path(newPath))
}

// Mkdir implements fs.FileSystem.
func (s *sandboxFS) Mkdir(path string) error { return s.phone.fsys.Mkdir(s.path(path)) }

// ReadDir implements fs.FileSystem.
func (s *sandboxFS) ReadDir(path string) ([]fs.DirEntry, error) {
	return s.phone.fsys.ReadDir(s.path(path))
}

// Stat implements fs.FileSystem.
func (s *sandboxFS) Stat(path string) (fs.FileInfo, error) {
	return s.phone.fsys.Stat(s.path(path))
}

// Sync implements fs.FileSystem.
func (s *sandboxFS) Sync() error {
	s.phone.accountSync(s.app)
	return s.phone.fsys.Sync()
}

// Unmount is not permitted from a sandbox.
func (s *sandboxFS) Unmount() error { return fs.ErrReadOnly }

// sandboxFile wraps a file with per-app accounting and monitor hooks.
type sandboxFile struct {
	fs.File
	phone *Phone
	app   string
}

// WriteAt implements fs.File.
func (f *sandboxFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.File.WriteAt(p, off)
	if n > 0 {
		f.phone.accountWrite(f.app, int64(n))
	}
	return n, err
}

// ReadAt implements fs.File.
func (f *sandboxFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	if n > 0 {
		f.phone.accountRead(f.app, int64(n))
	}
	return n, err
}

// Sync implements fs.File.
func (f *sandboxFile) Sync() error {
	f.phone.accountSync(f.app)
	return f.File.Sync()
}

var _ fs.FileSystem = (*sandboxFS)(nil)
var _ fs.File = (*sandboxFile)(nil)
