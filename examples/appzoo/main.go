// Appzoo: a realistic population of apps — a camera, a chat app, a system
// updater, the Spotify cache bug the paper cites, and the deliberate wear
// attack — living together on one phone while the §4.5 classifier watches.
// The verdicts show the "refined approach" working: only the two harmful
// writers are flagged.
package main

import (
	"fmt"
	"log"
	"os"

	"flashwear/internal/experiments"
	"flashwear/internal/report"
)

func main() {
	rows, err := experiments.ClassifierEval(experiments.Config{
		Scale:    1024,
		Progress: func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable(
		"One simulated day on a phone: who would the OS throttle?",
		"App", "Behaviour", "Wrote (MiB)", "Score", "Flagged")
	desc := map[string]string{
		"camera":      "bursty imports, hours apart",
		"chat":        "tiny fsynced appends, nonstop",
		"updater":     "one big download + rename",
		"spotify-bug": "cache rewrite bug [26]",
		"wear-attack": "the paper's §4.4 app",
	}
	for _, r := range rows {
		tbl.AddRow(r.App, desc[r.App], r.WrittenMiB, r.Score, r.Flagged)
	}
	tbl.Render(os.Stdout)
	fmt.Println("\nNote the Spotify bug: not malicious, just poorly written —")
	fmt.Println("and indistinguishable from the attack at the storage layer,")
	fmt.Println("which is exactly the paper's point about consumable resources.")
}
