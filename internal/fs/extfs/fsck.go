package extfs

import (
	"encoding/binary"
	"fmt"

	"flashwear/internal/blockdev"
)

// FsckReport is the outcome of an offline consistency check.
type FsckReport struct {
	// Corruptions are invariant violations: referenced-but-free blocks,
	// doubly-referenced blocks, entries pointing at free inodes. A
	// healthy (or correctly recovered) volume has none.
	Corruptions []string
	// LeakedBlocks counts allocated-but-unreferenced data blocks. Leaks
	// are legal after a crash (the journal quarantine errs this way) —
	// they waste space, never data.
	LeakedBlocks int
	// OrphanInodes counts allocated inodes unreachable from the root.
	OrphanInodes int
	// Files and Dirs count reachable objects.
	Files int
	Dirs  int
}

// Clean reports whether the volume is free of corruption (leaks allowed).
func (r FsckReport) Clean() bool { return len(r.Corruptions) == 0 }

// Fsck runs a read-only, mount-free consistency check over an extfs
// volume: every reachable inode's block tree is walked, references are
// checked against the bitmap, and double-allocations are detected. Run it
// after journal replay to prove recovery produced a consistent volume.
//
// Limitation: the reachability walk reads only a directory's direct blocks
// (192 entries); larger directories report their tail entries as orphans
// rather than corruption.
func Fsck(dev blockdev.Device) (FsckReport, error) {
	var rep FsckReport
	sbBlock, err := readBlock(dev, 0)
	if err != nil {
		return rep, err
	}
	sb, err := decodeSuperblock(sbBlock)
	if err != nil {
		return rep, err
	}

	// Load the bitmap.
	bits := make([]uint64, int(sb.bitmapBlks)*BlockSize/8)
	for i := uint32(0); i < sb.bitmapBlks; i++ {
		b, err := readBlock(dev, sb.bitmapStart+i)
		if err != nil {
			return rep, err
		}
		base := int(i) * BlockSize / 8
		for w := 0; w < BlockSize/8; w++ {
			bits[base+w] = binary.LittleEndian.Uint64(b[w*8:])
		}
	}
	allocated := func(blk uint32) bool { return bits[blk/64]&(1<<(blk%64)) != 0 }

	// Load every inode.
	inodes := make(map[uint32]*inode)
	for tb := uint32(0); tb < sb.itableBlks; tb++ {
		b, err := readBlock(dev, sb.itableStart+tb)
		if err != nil {
			return rep, err
		}
		for slot := 0; slot < InodesPerBlock; slot++ {
			ino := tb*InodesPerBlock + uint32(slot)
			in := decodeInode(ino, b[slot*InodeSize:(slot+1)*InodeSize])
			if in.mode != modeFree && ino != 0 {
				inodes[ino] = in
			}
		}
	}

	refs := map[uint32]uint32{} // data block -> referencing inode
	addRef := func(blk uint32, ino uint32) {
		if blk == 0 {
			return
		}
		if blk < sb.dataStart || blk >= sb.totalBlocks {
			rep.Corruptions = append(rep.Corruptions,
				fmt.Sprintf("inode %d references out-of-range block %d", ino, blk))
			return
		}
		if !allocated(blk) {
			rep.Corruptions = append(rep.Corruptions,
				fmt.Sprintf("inode %d references free block %d", ino, blk))
		}
		if prev, dup := refs[blk]; dup {
			rep.Corruptions = append(rep.Corruptions,
				fmt.Sprintf("block %d referenced by inodes %d and %d", blk, prev, ino))
			return
		}
		refs[blk] = ino
	}

	readPtrs := func(blk uint32) ([]uint32, error) {
		b, err := readBlock(dev, blk)
		if err != nil {
			return nil, err
		}
		out := make([]uint32, PtrsPerBlk)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(b[i*PtrSize:])
		}
		return out, nil
	}

	// Walk each inode's block tree.
	for ino, in := range inodes {
		for _, blk := range in.direct {
			addRef(blk, ino)
		}
		if in.indirect != 0 {
			addRef(in.indirect, ino)
			ptrs, err := readPtrs(in.indirect)
			if err != nil {
				return rep, err
			}
			for _, p := range ptrs {
				addRef(p, ino)
			}
		}
		if in.dindirect != 0 {
			addRef(in.dindirect, ino)
			l1, err := readPtrs(in.dindirect)
			if err != nil {
				return rep, err
			}
			for _, p1 := range l1 {
				if p1 == 0 {
					continue
				}
				addRef(p1, ino)
				l2, err := readPtrs(p1)
				if err != nil {
					return rep, err
				}
				for _, p2 := range l2 {
					addRef(p2, ino)
				}
			}
		}
	}

	// Reachability from the root, and directory-entry validity.
	reachable := map[uint32]bool{}
	var walk func(ino uint32) error
	walk = func(ino uint32) error {
		if reachable[ino] {
			return nil
		}
		reachable[ino] = true
		in, ok := inodes[ino]
		if !ok {
			rep.Corruptions = append(rep.Corruptions,
				fmt.Sprintf("directory entry points at free inode %d", ino))
			return nil
		}
		if in.mode != modeDir {
			rep.Files++
			return nil
		}
		rep.Dirs++
		// Read the directory content directly through its block tree.
		nblk := (in.size + BlockSize - 1) / BlockSize
		for i := int64(0); i < nblk && i < NDirect; i++ {
			blk := in.direct[i]
			if blk == 0 {
				continue
			}
			b, err := readBlock(dev, blk)
			if err != nil {
				return err
			}
			limit := in.size - i*BlockSize
			for off := 0; off+dirEntSize <= BlockSize && int64(off) < limit; off += dirEntSize {
				child := binary.LittleEndian.Uint32(b[off:])
				if child == 0 {
					continue
				}
				if err := walk(child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(RootIno); err != nil {
		return rep, err
	}
	for ino := range inodes {
		if !reachable[ino] {
			rep.OrphanInodes++
		}
	}

	// Leaked blocks: allocated in the data area but never referenced.
	for blk := sb.dataStart; blk < sb.totalBlocks; blk++ {
		if allocated(blk) {
			if _, ok := refs[blk]; !ok {
				rep.LeakedBlocks++
			}
		}
	}
	return rep, nil
}
