package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked package under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	// Sources holds raw file contents keyed by filename, for the
	// trailing-vs-standalone ignore-directive distinction.
	Sources map[string][]byte
	Types   *types.Package
	Info    *types.Info
	// FactsOnly marks an in-module dependency of the packages matching
	// the load patterns: it is analyzed only so fact-exporting analyzers
	// can summarize it for its dependents; its diagnostics are discarded.
	FactsOnly bool
	// ExportFile is the compiler export data the go command produced for
	// this package, whose hash fingerprints serialized facts.
	ExportFile string
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, which
// must sit inside a module) with `go list -export -json -deps`, then
// type-checks each matched package from source, importing every dependency
// — stdlib and in-module alike — from the compiler export data the go
// command just produced. This works fully offline: nothing is fetched, and
// only the packages under analysis pay source type-checking cost.
//
// In-module dependencies of the matched packages are loaded too, marked
// FactsOnly: fact-exporting analyzers (simtaint) summarize them so their
// dependents see callee behavior even under a narrow pattern, but they
// produce no diagnostics. The returned slice is in dependency order —
// `go list -deps` emits a package only after everything it imports — so a
// single in-order sweep sees every callee's facts before its callers.
//
// Test files are not loaded; the suite's invariants bind shipped
// simulation code, and `go vet -vettool=flashvet` covers test variants
// with exact build metadata when wanted (see DESIGN.md §10).
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("analysis: go %v: %v\n%s", args, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("analysis: go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Standard-library deps are never re-analyzed (their behavior is
		// captured in the analyzers' intrinsic tables); in-module deps
		// are, facts-only, so summaries exist for narrow patterns.
		if !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkg.FactsOnly = t.DepOnly
		pkg.ExportFile = exports[t.ImportPath]
		pkgs = append(pkgs, pkg)
	}
	return pkgs, fset, nil
}

// exportImporter returns a types.Importer that resolves every import from
// the export-data files in exports.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Sources:    make(map[string][]byte),
	}
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		pkg.Sources[path] = src
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
