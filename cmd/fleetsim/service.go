package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"flashwear/internal/fleetd"
	"flashwear/internal/report"
)

// serviceRun is fleetsim's checkpointed mode (-checkpoint / -resume): the
// same population question answered through the fleetd engine instead of
// one batch fleet.Run call, so the run survives kill -9 and resumes from
// its last complete epoch. The results follow fleetd's daily-reboot
// determinism contract — byte-identical across -workers, -shards,
// -checkpoint-every, and any number of interruptions, but not
// digit-comparable with batch-mode output (see DESIGN.md §11).
func serviceRun(checkpointDir, resumeDir string, spec fleetd.CampaignSpec, metricsCSV, wearTrace, tracePath string) error {
	var c *fleetd.Campaign
	var mgr *fleetd.Manager
	if resumeDir != "" {
		var err error
		mgr, err = fleetd.NewManager(resumeDir)
		if err != nil {
			return err
		}
		campaigns := mgr.List()
		if len(campaigns) == 0 {
			return fmt.Errorf("-resume: no campaign found in %s", resumeDir)
		}
		c = campaigns[0]
		fmt.Fprintf(os.Stderr, "fleetsim: resuming campaign %s from %s (%d/%d days done)\n",
			c.ID(), resumeDir, c.Status().DaysDone, c.Spec().Days)
		if tracePath != "" {
			mgr.Trace().StartRecording()
		}
		if err := c.Resume(); err != nil {
			return err
		}
	} else {
		var err error
		mgr, err = fleetd.NewManager(checkpointDir)
		if err != nil {
			return err
		}
		if n := len(mgr.List()); n > 0 {
			return fmt.Errorf("-checkpoint: %s already holds a campaign; use -resume to continue it", checkpointDir)
		}
		if tracePath != "" {
			mgr.Trace().StartRecording()
		}
		c, err = mgr.Submit(spec)
		if err != nil {
			return err
		}
	}
	if err := c.Wait(); err != nil {
		return err
	}
	if tracePath != "" {
		mgr.Trace().StopRecording()
		if err := writeTo(tracePath, mgr.Trace().WriteChrome); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fleetsim: wrote execution trace to %s (%d spans); the campaign results above are unaffected by tracing\n",
			tracePath, mgr.Trace().SpanCount())
	}
	renderCampaign(os.Stdout, c)
	if metricsCSV != "" {
		if err := writeTo(metricsCSV, c.Series().WriteCSV); err != nil {
			return err
		}
	}
	if wearTrace != "" {
		ledger := c.Ledger()
		renderWear := ledger.WriteCSV
		if strings.HasSuffix(wearTrace, ".json") {
			renderWear = ledger.WriteJSON
		}
		if err := writeTo(wearTrace, renderWear); err != nil {
			return err
		}
	}
	return nil
}

// renderCampaign prints the fleetd-mode summary — the same shape as the
// batch render, built from the campaign's terminal aggregate.
func renderCampaign(w io.Writer, c *fleetd.Campaign) {
	spec := c.Spec()
	agg, _ := c.Aggregate()
	fmt.Fprintf(w, "Campaign %s: %d devices over %d days (seed %d, scale %d, checkpointed)\n\n",
		c.ID(), spec.Devices, spec.Days, spec.Seed, spec.Scale)
	t := agg.Total
	fmt.Fprintf(w, "bricked: %d of %d (%.2f%%), read-only: %d\n",
		t.Bricked, t.Devices, pct(t.Bricked, t.Devices), t.ReadOnly)
	if t.Bricked > 0 {
		fmt.Fprintf(w, "mean time-to-brick: %.1f days\n", float64(t.BrickDayMilli)/1000/float64(t.Bricked))
	}
	fmt.Fprintf(w, "host data absorbed: %s\n\n", report.HumanBytes(t.HostMiB<<20))
	campaignGroupTable(w, "By workload class", agg.ByClass)
	campaignGroupTable(w, "By device model", agg.ByProfile)
	wa := report.Percentiles(agg.WriteAmp, 0.50, 0.90, 0.99)
	fmt.Fprintf(w, "write amplification: p50 %.2f  p90 %.2f  p99 %.2f\n", wa[0], wa[1], wa[2])
}

func campaignGroupTable(w io.Writer, title string, groups []fleetd.NamedGroup) {
	tbl := report.NewTable(title, "group", "devices", "bricked", "brick%", "mean-days", "host-data")
	for _, g := range groups {
		meanDays := 0.0
		if g.Bricked > 0 {
			meanDays = float64(g.BrickDayMilli) / 1000 / float64(g.Bricked)
		}
		tbl.AddRow(g.Name, g.Devices, g.Bricked,
			fmt.Sprintf("%.2f", pct(g.Bricked, g.Devices)),
			fmt.Sprintf("%.1f", meanDays),
			report.HumanBytes(g.HostMiB<<20))
	}
	tbl.Render(w)
	fmt.Fprintln(w)
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
