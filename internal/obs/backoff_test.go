package obs

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffDelayDoublesAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 45 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // after attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		45 * time.Millisecond, // capped
		45 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Zero value gets usable defaults.
	if d := (Backoff{}).Delay(1); d <= 0 {
		t.Errorf("zero-value Delay(1) = %v", d)
	}
}

func TestBackoffRetrySucceedsAfterFailures(t *testing.T) {
	var sleeps []time.Duration
	b := Backoff{
		Attempts: 5,
		Base:     8 * time.Millisecond,
		Max:      time.Second,
		Sleep:    func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	calls := 0
	err := b.Retry(func(attempt int) (bool, error) {
		calls++
		if attempt != calls {
			t.Fatalf("attempt = %d on call %d", attempt, calls)
		}
		if attempt < 3 {
			return true, errors.New("transient")
		}
		return false, nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(sleeps))
	}
	for i, s := range sleeps {
		d := b.Delay(i + 1)
		if s < d/2 || s > d {
			t.Errorf("sleep %d = %v, want jittered into [%v, %v]", i, s, d/2, d)
		}
	}
}

func TestBackoffRetryExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("still broken")
	calls := 0
	b := Backoff{Attempts: 3, Sleep: func(time.Duration) {}}
	if err := b.Retry(func(int) (bool, error) { calls++; return true, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestBackoffRetryStopsOnPermanentError(t *testing.T) {
	sentinel := errors.New("bad request")
	calls := 0
	b := Backoff{Attempts: 5, Sleep: func(time.Duration) { t.Fatal("slept on a permanent error") }}
	if err := b.Retry(func(int) (bool, error) { calls++; return false, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}
