package wtrace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Row is one origin's account in a ledger snapshot. All counts are
// integers so snapshots scale, merge, and compare exactly; derived ratios
// (write amplification) are computed only at render time.
type Row struct {
	Origin string `json:"origin"`
	// HostPages/HostBytes are logical pages the origin wrote into the FTL.
	HostPages int64 `json:"host_pages"`
	HostBytes int64 `json:"host_bytes"`
	// The write-amplification decomposition: physical NAND programs the
	// origin's data caused, split by why the FTL issued them.
	HostPrograms  int64 `json:"host_programs"`
	GCPrograms    int64 `json:"gc_programs"`
	WLPrograms    int64 `json:"wl_programs"`
	CachePrograms int64 `json:"cache_programs"`
	// PhysPages/PhysBytes are the four causes summed.
	PhysPages int64 `json:"phys_pages"`
	PhysBytes int64 `json:"phys_bytes"`
	// Erases is the origin's plurality-attributed block-erase count (P/E
	// cycles consumed); ErasePages is the page-weighted share.
	Erases     int64 `json:"erases"`
	ErasePages int64 `json:"erase_pages"`
}

func (r *Row) addFrom(o Row) {
	r.HostPages += o.HostPages
	r.HostBytes += o.HostBytes
	r.HostPrograms += o.HostPrograms
	r.GCPrograms += o.GCPrograms
	r.WLPrograms += o.WLPrograms
	r.CachePrograms += o.CachePrograms
	r.PhysPages += o.PhysPages
	r.PhysBytes += o.PhysBytes
	r.Erases += o.Erases
	r.ErasePages += o.ErasePages
}

// Snapshot is a point-in-time copy of a ledger, rows sorted by origin
// name. Snapshots support the same integer algebra as fleet metrics:
// Scale multiplies, Merge adds by origin name, so fleet aggregation is
// order-independent and byte-identical across worker counts.
type Snapshot struct {
	// PageSize is the device page size behind the page counts; zero after
	// merging snapshots from devices with different geometries.
	PageSize int64 `json:"page_size"`
	Rows     []Row `json:"rows"`
}

// Snapshot captures the ledger. Rows come out sorted by origin name.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	names := append([]string(nil), l.names...)
	l.mu.Unlock()
	rows := l.loadRows()
	ps := l.pageSize.Load()
	s := Snapshot{PageSize: ps, Rows: make([]Row, len(names))}
	for i, name := range names {
		r := rows[i]
		out := Row{
			Origin:        name,
			HostPages:     r.hostPages.Load(),
			HostBytes:     r.hostBytes.Load(),
			HostPrograms:  r.programs[CauseHost].Load(),
			GCPrograms:    r.programs[CauseGC].Load(),
			WLPrograms:    r.programs[CauseWL].Load(),
			CachePrograms: r.programs[CauseCache].Load(),
			Erases:        r.erases.Load(),
			ErasePages:    r.erasePages.Load(),
		}
		out.PhysPages = out.HostPrograms + out.GCPrograms + out.WLPrograms + out.CachePrograms
		out.PhysBytes = out.PhysPages * ps
		s.Rows[i] = out
	}
	sort.Slice(s.Rows, func(i, j int) bool { return s.Rows[i].Origin < s.Rows[j].Origin })
	return s
}

// Scale multiplies every count by k — the fleet's capacity-scaling
// multiply-back, mirroring how device volumes scale to full size.
func (s *Snapshot) Scale(k int64) {
	for i := range s.Rows {
		r := &s.Rows[i]
		r.HostPages *= k
		r.HostBytes *= k
		r.HostPrograms *= k
		r.GCPrograms *= k
		r.WLPrograms *= k
		r.CachePrograms *= k
		r.PhysPages *= k
		r.PhysBytes *= k
		r.Erases *= k
		r.ErasePages *= k
	}
}

// Merge adds o into s by origin name (integer adds, so merge order never
// changes the result). Rows stay sorted by name.
func (s *Snapshot) Merge(o Snapshot) {
	if len(o.Rows) == 0 {
		return
	}
	if len(s.Rows) == 0 {
		s.PageSize = o.PageSize
	} else if s.PageSize != o.PageSize {
		s.PageSize = 0
	}
	idx := make(map[string]int, len(s.Rows))
	for i := range s.Rows {
		idx[s.Rows[i].Origin] = i
	}
	for _, r := range o.Rows {
		if i, ok := idx[r.Origin]; ok {
			s.Rows[i].addFrom(r)
		} else {
			s.Rows = append(s.Rows, r)
		}
	}
	sort.Slice(s.Rows, func(i, j int) bool { return s.Rows[i].Origin < s.Rows[j].Origin })
}

// Totals sums all rows — the device-level account the per-origin rows
// must reproduce exactly.
func (s Snapshot) Totals() Row {
	t := Row{Origin: "TOTAL"}
	for _, r := range s.Rows {
		t.addFrom(r)
	}
	return t
}

// Top returns the origin with the most physical bytes written, excluding
// "os" — the ledger's verdict on who is wearing the device out. Empty
// string if no origin has caused any physical write.
func (s Snapshot) Top() string {
	best, bestPhys := "", int64(0)
	for _, r := range s.Rows {
		if r.Origin == "os" {
			continue
		}
		if r.PhysBytes > bestPhys {
			best, bestPhys = r.Origin, r.PhysBytes
		}
	}
	return best
}

// csvHeader is the ledger CSV column set. write_amp is derived
// (phys_bytes / host_bytes) at render time only.
const csvHeader = "origin,host_pages,host_bytes,host_programs,gc_programs,wl_programs,cache_programs,phys_pages,phys_bytes,erases,erase_pages,write_amp\n"

func writeCSVRow(bw *bufio.Writer, r Row) {
	bw.WriteString(r.Origin)
	for _, v := range []int64{r.HostPages, r.HostBytes, r.HostPrograms, r.GCPrograms,
		r.WLPrograms, r.CachePrograms, r.PhysPages, r.PhysBytes, r.Erases, r.ErasePages} {
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(v, 10))
	}
	bw.WriteByte(',')
	wa := 0.0
	if r.HostBytes > 0 {
		wa = float64(r.PhysBytes) / float64(r.HostBytes)
	}
	bw.WriteString(strconv.FormatFloat(wa, 'g', 6, 64))
	bw.WriteByte('\n')
}

// WriteCSV renders the ledger: one row per origin sorted by name, then a
// TOTAL row that equals the column sums — the decomposition identity,
// checkable by a shell one-liner (or cmd/wtracecheck).
func (s Snapshot) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(csvHeader)
	for _, r := range s.Rows {
		writeCSVRow(bw, r)
	}
	writeCSVRow(bw, s.Totals())
	return bw.Flush()
}

// WriteLabeledCSV appends the snapshot (plus its TOTAL row) to a long-form
// CSV whose first column is a run label — the multi-run variant of
// WriteCSV. The header line is emitted only when header is true, so
// several runs can share one file.
func (s Snapshot) WriteLabeledCSV(w io.Writer, label string, header bool) error {
	bw := bufio.NewWriter(w)
	if header {
		bw.WriteString("label," + csvHeader)
	}
	rows := append(append([]Row(nil), s.Rows...), s.Totals())
	for _, r := range rows {
		bw.WriteString(label)
		bw.WriteByte(',')
		writeCSVRow(bw, r)
	}
	return bw.Flush()
}

// WriteJSON renders the snapshot plus its TOTAL row as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	out := struct {
		PageSize int64 `json:"page_size"`
		Rows     []Row `json:"rows"`
		Total    Row   `json:"total"`
	}{s.PageSize, s.Rows, s.Totals()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
