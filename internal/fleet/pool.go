package fleet

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"flashwear/internal/telemetry"
)

// Run simulates the fleet described by spec and returns the merged
// population statistics. It blocks until every device has run, spec's
// context is cancelled, or a device fails.
//
// Scheduling is dynamic — an atomic cursor hands the next device index to
// whichever worker frees up first — but the Result is independent of both
// the schedule and Workers: device parameters derive from (Seed, index)
// alone, each device simulates on a private stack, and accumulator merging
// is integer-additive. See the package documentation.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	spec = spec.Defaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers > spec.Devices {
		workers = spec.Devices
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		cursor   atomic.Int64 // next device index to hand out
		done     atomic.Int64 // completed devices, for Progress
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	accs := make([]*Accumulator, workers)
	for w := 0; w < workers; w++ {
		acc := newAccumulator(spec)
		accs[w] = acc
		// Live per-worker progress counters: schedule-dependent by nature
		// (which worker draws which device is a race), so they go to the
		// caller's monitoring registry, never into the deterministic Result.
		var doneCtr, brickCtr *telemetry.Counter
		if spec.Telemetry != nil {
			worker := strconv.Itoa(w)
			doneCtr = spec.Telemetry.Counter(telemetry.Name("fleet.devices_done", "worker", worker))
			brickCtr = spec.Telemetry.Counter(telemetry.Name("fleet.bricks", "worker", worker))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(cursor.Add(1) - 1)
				if i >= spec.Devices {
					return
				}
				res, err := simulateDevice(ctx, spec, spec.sample(i))
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				acc.add(res)
				if doneCtr != nil {
					doneCtr.Inc()
					if res.Bricked {
						brickCtr.Inc()
					}
				}
				if spec.Progress != nil {
					spec.Progress(int(done.Add(1)), spec.Devices)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The caller's context may have been cancelled between devices, in
	// which case no worker recorded an error but the run is incomplete.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	merged := accs[0]
	for _, acc := range accs[1:] {
		if err := merged.merge(acc); err != nil {
			return nil, err
		}
	}
	return &Result{Spec: spec, Accumulator: merged}, nil
}
