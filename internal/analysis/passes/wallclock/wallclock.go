// Package wallclock forbids wall-clock time in simulation code.
//
// Invariant: a simulation run is a pure function of its Spec (DESIGN.md
// §6). Every timestamp must come from the injected simclock.Clock;
// time.Now and friends smuggle in host state, making runs unrepeatable and
// crash/remount suites unreplayable. Durations and time.Duration
// arithmetic remain fine — only sources of real time (and real delays) are
// banned. Test files are exempt: harness timeouts and benchmarks
// legitimately watch the host clock.
package wallclock

import (
	"go/ast"
	"go/types"

	"flashwear/internal/analysis"
)

// banned lists the package-level time functions that read or wait on the
// host clock. Constructors like time.Date are allowed: they compute a
// value from explicit arguments.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock time in simulation code\n\n" +
		"Simulated time comes from the injected simclock.Clock; time.Now,\n" +
		"time.Since, time.Sleep and the timer constructors read host state\n" +
		"and break bit-exact replay.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
			return true
		}
		if pass.IsTestFile(sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Pos(), "wall-clock time.%s in simulation code: use the injected simclock.Clock", fn.Name())
		return true
	})
	return nil
}
