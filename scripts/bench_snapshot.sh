#!/usr/bin/env bash
# bench_snapshot.sh — the benchmark-trajectory harness (DESIGN.md §14).
# Produces BENCH_fleetd.json, a machine-readable snapshot of where fleetd
# spends its time and how fast it simulates:
#
#   - devices/s from BenchmarkFleetScaling at each worker width,
#   - the runtrace recording overhead (campaign wall time with span
#     recording off vs on),
#   - the per-phase wall-time split of a real campaign served by a live
#     fleetd process, scraped from /metrics and cross-checked against a
#     fetched Chrome trace (kept as sample-trace.json).
#
# Raw artifacts land in $BENCH_OUT (default benchsnap-out/, gitignored);
# the JSON summary is also copied to ./BENCH_fleetd.json, which is
# committed so the repo carries a reviewable trajectory of the numbers.
# Timings are machine-dependent: refresh the committed file deliberately,
# not on every run. BENCHTIME tunes go test -benchtime (default 2x: a
# smoke-grade sample, not a publication-grade timing).
set -euo pipefail

cd "$(dirname "$0")/.."
BENCH_OUT=${BENCH_OUT:-benchsnap-out}
BENCHTIME=${BENCHTIME:-2x}
rm -rf "$BENCH_OUT" && mkdir -p "$BENCH_OUT"

SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

echo "bench_snapshot: fleet scaling benchmark (-benchtime $BENCHTIME)"
go test -run '^$' -bench 'BenchmarkFleetScaling' -benchtime "$BENCHTIME" . \
    >"$BENCH_OUT/fleetscaling.txt"

echo "bench_snapshot: runtrace overhead benchmark (-benchtime $BENCHTIME)"
go test -run '^$' -bench 'BenchmarkRuntraceOverhead' -benchtime "$BENCHTIME" \
    ./internal/fleetd/ >"$BENCH_OUT/overhead.txt"

echo "bench_snapshot: live campaign phase split"
go build -o "$BENCH_OUT/fleetd" ./cmd/fleetd
ADDR="127.0.0.1:${BENCH_PORT:-17091}"
BASE="http://$ADDR"
"$BENCH_OUT/fleetd" serve -addr "$ADDR" -data "$BENCH_OUT/data" \
    2>"$BENCH_OUT/server.log" &
SERVER_PID=$!
for _ in $(seq 1 50); do
    curl -sf "$BASE/v1/campaigns" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "$BASE/v1/campaigns" >/dev/null \
    || { echo "bench_snapshot: server did not come up on $ADDR" >&2; exit 1; }

"$BENCH_OUT/fleetd" trace -addr "$BASE" start >/dev/null
ID=$("$BENCH_OUT/fleetd" submit -addr "$BASE" -name benchsnap \
    -devices 24 -days 12 -seed 42 -scale 65536 -wear-trace \
    -shards 2 -checkpoint-every 3 | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
"$BENCH_OUT/fleetd" wait -addr "$BASE" -every 500ms "$ID" >/dev/null
"$BENCH_OUT/fleetd" trace -addr "$BASE" stop >/dev/null
"$BENCH_OUT/fleetd" trace -addr "$BASE" -o "$BENCH_OUT/sample-trace.json" fetch 2>/dev/null
curl -sf "$BASE/metrics" >"$BENCH_OUT/metrics.txt"
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

grep -q '"traceEvents"' "$BENCH_OUT/sample-trace.json" \
    || { echo "bench_snapshot: sample trace is not a Chrome trace-event file" >&2; exit 1; }
SPANS=$({ grep -o '"ph":"X"' "$BENCH_OUT/sample-trace.json" || true; } | wc -l | tr -d ' ')
[ "$SPANS" -gt 0 ] || { echo "bench_snapshot: sample trace recorded no spans" >&2; exit 1; }

echo "bench_snapshot: assembling BENCH_fleetd.json"
{
    printf '{\n'
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"

    # BenchmarkFleetScaling/workers=N-P <iters> <ns> ns/op ... <v> devices/s
    printf '  "fleet_devices_per_sec": {\n'
    # On few-core hosts GOMAXPROCS(0) collides with a fixed width and go
    # test dedupes the name with #NN; keep the first sample per width.
    awk '/^BenchmarkFleetScaling\/workers=/ {
        split($1, parts, "=");  sub(/-[0-9]+$/, "", parts[2]);  sub(/#.*$/, "", parts[2])
        if (parts[2] in seen) next;  seen[parts[2]] = 1
        for (i = 2; i <= NF; i++) if ($i == "devices/s") v = $(i-1)
        rows[++n] = sprintf("    \"workers=%s\": %s", parts[2], v)
    } END { for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "") }' \
        "$BENCH_OUT/fleetscaling.txt"
    printf '  },\n'

    # BenchmarkRuntraceOverhead/recording-{off,on}-P <iters> <ns> ns/op
    awk '/^BenchmarkRuntraceOverhead\/recording-off/ { off = $3 }
         /^BenchmarkRuntraceOverhead\/recording-on/  { on  = $3 }
         END {
            if (off == 0) { print "bench_snapshot: overhead benchmark produced no numbers" > "/dev/stderr"; exit 1 }
            printf "  \"runtrace_overhead\": {\n"
            printf "    \"recording_off_ns_op\": %s,\n", off
            printf "    \"recording_on_ns_op\": %s,\n", on
            printf "    \"overhead_pct\": %.2f\n", 100 * (on - off) / off
            printf "  },\n"
         }' "$BENCH_OUT/overhead.txt"

    # fleetd_phase_seconds_sum{phase="x"} <seconds> from the live scrape.
    printf '  "phase_seconds": {\n'
    awk -F'[""]' '/^fleetd_phase_seconds_sum\{phase=/ {
        split($0, f, " "); phases[++n] = $2; secs[n] = f[2]; total += f[2]
    } END {
        for (i = 1; i <= n; i++)
            printf "    \"%s\": {\"seconds\": %s, \"fraction\": %.4f}%s\n",
                phases[i], secs[i], (total > 0 ? secs[i] / total : 0), (i < n ? "," : "")
    }' "$BENCH_OUT/metrics.txt"
    printf '  },\n'

    printf '  "sample_trace_spans": %s\n' "$SPANS"
    printf '}\n'
} >"$BENCH_OUT/BENCH_fleetd.json"

cp "$BENCH_OUT/BENCH_fleetd.json" BENCH_fleetd.json
echo "bench_snapshot: OK — wrote BENCH_fleetd.json (and $BENCH_OUT/sample-trace.json, $SPANS spans)"
