// Package wtrace is the causal wear-attribution layer: it threads an
// origin tag (app, stream, or workload identity) from the write's point of
// entry — an android app sandbox, an appmodel writer, a fleet workload
// class — through the file system and FTL down to individual NAND programs
// and erases, and aggregates the result into a per-origin wear ledger.
//
// The paper's headline is that an unprivileged app can silently consume a
// device's entire P/E budget; aggregate counters (internal/telemetry) show
// *that* wear happened but not *whose* writes caused it. wtrace answers
// the "whose" question the way Flashmon answers it for raw NAND I/O —
// event-level monitoring at the flash layer — but with full cross-layer
// causality, because the simulation owns every layer of the stack.
//
// # Attribution model
//
// Every device stack is single-threaded, so the current origin is ambient
// state on the Tracer: the layer that accepts a write (the android
// sandbox, a TagFS wrapper) sets it, and everything the write causes
// further down — FS journal commits, read-modify-writes, cache routing —
// inherits it without any per-call plumbing. Inside the FTL the tag
// becomes per-physical-page state (mirroring the reverse map, and stamped
// into NAND OOB metadata so it survives power loss): a GC relocation, a
// wear-leveling migration, or an SLC-cache drain attributes its program to
// the origin that owns the data being moved, under a cause bucket (host /
// gc / wl / cache). An erase is attributed to the origin that programmed
// the plurality of the block's pages since its last erase (ties break to
// the lowest origin id; a never-programmed block erases against origin 0).
//
// # The decomposition identity
//
// Per-origin counts are integers and every counted NAND operation is
// attributed to exactly one origin, so the ledger rows sum *exactly* to
// the device totals:
//
//	Σ host_pages            == ftl.Stats().HostPagesWritten
//	Σ programs (all causes) == main.Stats().Programs + cache.Stats().Programs
//	Σ erases                == main.Stats().Erases + cache.Stats().Erases
//
// This identity is pinned by tests at the FTL, android, and fleet layers.
//
// # Cost
//
// With no tracer attached the hot path costs one nil pointer compare per
// FTL program (pinned by BenchmarkFTLWrite, <2% like the idle fault
// plans). With a tracer attached, notes are single atomic adds; Chrome
// trace events are recorded only after EnableEvents and are capped.
package wtrace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Origin identifies one writer (an app, a workload class, a stream). It
// indexes the Ledger's origin table. Origin 0 is always "os": writes
// issued while no origin is set — mkfs, mount, FS background work not
// caused by any app write.
type Origin uint16

// OriginOS is the default ambient origin.
const OriginOS Origin = 0

// Cause buckets one physical program by why the FTL issued it — the
// write-amplification decomposition.
type Cause uint8

const (
	// CauseHost is a program carrying host data (into either pool).
	CauseHost Cause = iota
	// CauseGC is a main-pool garbage-collection relocation.
	CauseGC
	// CauseWL is a static wear-leveling migration.
	CauseWL
	// CauseCache is an SLC-cache drain migration into the main pool.
	CauseCache

	// NumCauses sizes per-cause arrays.
	NumCauses
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseHost:
		return "host"
	case CauseGC:
		return "gc"
	case CauseWL:
		return "wl"
	case CauseCache:
		return "cache"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// row is one origin's live counters. All fields are atomics so emission
// and snapshotting are safe under concurrency (the fleet snapshots worker
// ledgers while devices run; see the -race tests).
type row struct {
	hostPages  atomic.Int64
	hostBytes  atomic.Int64
	programs   [NumCauses]atomic.Int64
	erases     atomic.Int64
	erasePages atomic.Int64
}

// Ledger is the per-origin wear account. Registration takes a mutex;
// counting is lock-free (atomic adds on a copy-on-write row slice), so
// concurrent registration, emission, and snapshotting are all safe.
type Ledger struct {
	mu     sync.Mutex
	byName map[string]Origin
	names  []string
	rows   atomic.Pointer[[]*row]

	pageSize atomic.Int64
}

// NewLedger returns a ledger with origin 0 ("os") pre-registered.
func NewLedger() *Ledger {
	l := &Ledger{byName: make(map[string]Origin)}
	l.byName["os"] = OriginOS
	l.names = []string{"os"}
	rows := []*row{new(row)}
	l.rows.Store(&rows)
	return l
}

// SetPageSize records the device page size, which converts page counts to
// bytes in snapshots. Safe to call at any time.
func (l *Ledger) SetPageSize(n int) { l.pageSize.Store(int64(n)) }

// PageSize returns the recorded page size.
func (l *Ledger) PageSize() int64 { return l.pageSize.Load() }

// Origin registers (or finds) an origin by name and returns its id. Names
// must be non-empty and must not contain commas, quotes, or newlines
// (they appear verbatim in CSV output).
func (l *Ledger) Origin(name string) Origin {
	if name == "" {
		panic("wtrace: empty origin name")
	}
	for _, r := range name {
		if r == ',' || r == '"' || r == '\n' || r == '\r' {
			panic(fmt.Sprintf("wtrace: origin name %q contains CSV-hostile characters", name))
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if o, ok := l.byName[name]; ok {
		return o
	}
	o := Origin(len(l.names))
	l.byName[name] = o
	l.names = append(l.names, name)
	// Copy-on-write so concurrent counters never observe a torn slice.
	old := *l.rows.Load()
	rows := make([]*row, len(old)+1)
	copy(rows, old)
	rows[len(old)] = new(row)
	l.rows.Store(&rows)
	return o
}

// Origins returns the registered origin names, indexed by Origin id.
func (l *Ledger) Origins() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.names...)
}

func (l *Ledger) loadRows() []*row { return *l.rows.Load() }

// addHostPage counts one host page written against org.
func (l *Ledger) addHostPage(org Origin) {
	r := l.loadRows()[org]
	r.hostPages.Add(1)
	r.hostBytes.Add(l.pageSize.Load())
}

// addProgram counts one physical NAND program against org under cause.
func (l *Ledger) addProgram(org Origin, cause Cause) {
	l.loadRows()[org].programs[cause].Add(1)
}

// addErase counts one block erase against org (plurality attribution).
func (l *Ledger) addErase(org Origin) { l.loadRows()[org].erases.Add(1) }

// addErasePages counts n page-units of an erased block against org — the
// proportional (page-weighted) erase share, alongside the exact plurality
// count.
func (l *Ledger) addErasePages(org Origin, n int64) {
	l.loadRows()[org].erasePages.Add(n)
}

// Tracer is one device stack's tracing handle: the ambient current
// origin, the event buffer, and a reference to the ledger it counts into.
// A Tracer is single-threaded like the device stack it instruments; only
// the Ledger behind it is concurrency-safe. Several tracers may share one
// ledger (each fleet device gets its own tracer; the experiments harness
// reuses one across sequential runs).
type Tracer struct {
	led *Ledger
	cur Origin

	// Now supplies event timestamps (the device's simulated clock). Nil
	// means all events stamp zero.
	Now func() time.Duration

	eventsOn bool
	eventCap int
	events   []Event
	dropped  int64

	tally []int32 // scratch for erase attribution
}

// New returns a tracer with its own fresh ledger.
func New() *Tracer { return NewWithLedger(NewLedger()) }

// NewWithLedger returns a tracer counting into a shared ledger.
func NewWithLedger(l *Ledger) *Tracer { return &Tracer{led: l} }

// Ledger returns the tracer's ledger.
func (t *Tracer) Ledger() *Ledger { return t.led }

// Origin registers (or finds) an origin by name.
func (t *Tracer) Origin(name string) Origin { return t.led.Origin(name) }

// SetOrigin makes org the ambient origin for subsequent host writes and
// returns the previous one, so callers can nest tag scopes.
func (t *Tracer) SetOrigin(org Origin) (prev Origin) {
	prev, t.cur = t.cur, org
	return prev
}

// Current returns the ambient origin.
func (t *Tracer) Current() Origin { return t.cur }

// SetPageSize forwards to the ledger.
func (t *Tracer) SetPageSize(n int) { t.led.SetPageSize(n) }

// NoteHostPage counts one host page written by the current origin.
func (t *Tracer) NoteHostPage() { t.led.addHostPage(t.cur) }

// NoteProgram counts one physical NAND program for org under cause.
func (t *Tracer) NoteProgram(org Origin, cause Cause) { t.led.addProgram(org, cause) }

// EraseBlockAttrib attributes one block erase. pageOrgs holds the origin
// of every page programmed into the block since its last erase; the erase
// is charged to the plurality owner (ties to the lowest origin id, an
// empty block to origin 0), and each origin additionally receives its
// page-weighted share in erase_pages. Exactly one erase is counted per
// call, which is what makes Σ erases match the chip totals.
func (t *Tracer) EraseBlockAttrib(block int, pageOrgs []Origin) {
	winner := OriginOS
	if len(pageOrgs) > 0 {
		n := len(t.led.loadRows())
		if cap(t.tally) < n {
			t.tally = make([]int32, n)
		}
		tally := t.tally[:n]
		clear(tally)
		for _, o := range pageOrgs {
			tally[o]++
		}
		var bestN int32
		for i, c := range tally {
			if c > bestN { // strict: ties keep the lowest id
				winner, bestN = Origin(i), c
			}
		}
		for i, c := range tally {
			if c > 0 {
				t.led.addErasePages(Origin(i), int64(c))
			}
		}
	}
	t.led.addErase(winner)
	t.emit(Event{Name: "erase", Ph: 'i', Tid: tidErase, Ts: t.now(), Origin: winner,
		Block: int32(block), Pages: int32(len(pageOrgs))})
}

// EnableEvents turns on Chrome trace-event recording with a buffer cap
// (0 means the default of one million events). Events past the cap are
// dropped and counted.
func (t *Tracer) EnableEvents(cap int) {
	if cap <= 0 {
		cap = 1 << 20
	}
	t.eventsOn = true
	t.eventCap = cap
}

// EventsEnabled reports whether event recording is on.
func (t *Tracer) EventsEnabled() bool { return t.eventsOn }

// Dropped returns how many events were dropped at the cap.
func (t *Tracer) Dropped() int64 { return t.dropped }

func (t *Tracer) now() int64 {
	if t.Now == nil {
		return 0
	}
	return t.Now().Microseconds()
}

func (t *Tracer) emit(e Event) {
	if !t.eventsOn {
		return
	}
	if len(t.events) >= t.eventCap {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// EventHostWrite records one host write request as a complete event on
// the current origin's track.
func (t *Tracer) EventHostWrite(off, nbytes int64, start, dur time.Duration) {
	if !t.eventsOn {
		return
	}
	t.emit(Event{Name: "write", Ph: 'X', Tid: tidHostBase + int32(t.cur),
		Ts: start.Microseconds(), Dur: dur.Microseconds(),
		Origin: t.cur, Off: off, Bytes: nbytes})
}

// EventRelocate records a GC or wear-leveling relocation of one block.
func (t *Tracer) EventRelocate(cause Cause, block, pages int) {
	if !t.eventsOn {
		return
	}
	tid, name := int32(tidGC), "gc.relocate"
	if cause == CauseWL {
		tid, name = tidWL, "wl.migrate"
	}
	t.emit(Event{Name: name, Ph: 'i', Tid: tid, Ts: t.now(),
		Block: int32(block), Pages: int32(pages)})
}
