package workload

import (
	"math/rand"
	"testing"

	"flashwear/internal/device"
	"flashwear/internal/fs"
	"flashwear/internal/fs/extfs"
	"flashwear/internal/simclock"
)

func testDev(t *testing.T) *device.Device {
	t.Helper()
	p := device.ProfileEMMC8().Scaled(512)
	d, err := device.New(p, simclock.New())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceWriterSequentialWraps(t *testing.T) {
	d := testDev(t)
	w := NewDeviceWriter(d, 1<<20, true, 1)
	// Write 2x the device size: must wrap, not error.
	total := d.Size() * 2
	var written int64
	for written < total {
		n, err := w.Step(4 << 20)
		if err != nil {
			t.Fatalf("after %d bytes: %v", written, err)
		}
		written += n
	}
	if d.BytesWritten() < total {
		t.Fatalf("device saw %d bytes, want >= %d", d.BytesWritten(), total)
	}
}

func TestDeviceWriterRandomStaysInRegion(t *testing.T) {
	d := testDev(t)
	w := NewDeviceWriter(d, 4096, false, 2)
	w.RegionOff = 1 << 20
	w.RegionLen = 2 << 20
	if _, err := w.Step(8 << 20); err != nil {
		t.Fatal(err)
	}
	// Region restriction is structural; validate via no error and volume.
	if d.BytesWritten() < 8<<20 {
		t.Fatalf("wrote %d", d.BytesWritten())
	}
}

func TestDeviceWriterValidation(t *testing.T) {
	d := testDev(t)
	w := NewDeviceWriter(d, 0, true, 1)
	if _, err := w.Step(4096); err == nil {
		t.Fatal("zero request size accepted")
	}
	w2 := NewDeviceWriter(d, 4096, true, 1)
	w2.RegionOff = d.Size()
	if _, err := w2.Step(4096); err == nil {
		t.Fatal("region past device accepted")
	}
}

func TestFigure1Sizes(t *testing.T) {
	sizes := Figure1Sizes()
	if sizes[0] != 512 || sizes[len(sizes)-1] != 16<<20 {
		t.Fatalf("sizes = %v", sizes)
	}
	if len(sizes) != 16 {
		t.Fatalf("len = %d, want 16 (0.5KiB..16MiB)", len(sizes))
	}
}

func TestMicrobenchShape(t *testing.T) {
	// Larger requests must be at least as fast as smaller ones on eMMC.
	clock := simclock.New()
	d, err := device.New(device.ProfileEMMC8().Scaled(512), clock)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Microbench(d, clock, 4096, true, 2<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Microbench(d, clock, 1<<20, true, 8<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if big.MiBps() <= small.MiBps() {
		t.Fatalf("bandwidth did not scale: 4K=%.1f 1M=%.1f", small.MiBps(), big.MiBps())
	}
	if small.Bytes != 2<<20 {
		t.Fatalf("bytes = %d", small.Bytes)
	}
}

func TestFillDevice(t *testing.T) {
	d := testDev(t)
	n, err := FillDevice(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := d.Size() / 2
	if n < want-(1<<20) || n > want {
		t.Fatalf("filled %d, want ~%d", n, want)
	}
	util := d.FTL().Utilisation()
	if util < 0.4 || util > 0.6 {
		t.Fatalf("utilisation %v, want ~0.5", util)
	}
	if _, err := FillDevice(d, 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestFileSetRewrites(t *testing.T) {
	d := testDev(t)
	if err := extfs.Mkfs(d); err != nil {
		t.Fatal(err)
	}
	v, err := extfs.Mount(d, fs.Options{DataAccounting: true, SyncEveryWrite: false})
	if err != nil {
		t.Fatal(err)
	}
	set := NewFileSet(v, "/attack", 256<<10, 4)
	if err := set.Setup(); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if set.TotalBytes() != 4*256<<10 {
		t.Fatalf("TotalBytes = %d", set.TotalBytes())
	}
	written, err := set.Step(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if written < 1<<20-4096 {
		t.Fatalf("Step wrote %d", written)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Step(4096); err == nil {
		t.Fatal("Step after Close succeeded")
	}
}

func TestFileSetValidation(t *testing.T) {
	d := testDev(t)
	if err := extfs.Mkfs(d); err != nil {
		t.Fatal(err)
	}
	v, _ := extfs.Mount(d, fs.Options{})
	s := NewFileSet(v, "/x", 1024, 1) // smaller than ReqBytes
	if err := s.Setup(); err == nil {
		t.Fatal("file smaller than request size accepted")
	}
}

func TestZipfSkewConcentratesWrites(t *testing.T) {
	// With strong skew, a handful of offsets should take most writes.
	d := testDev(t)
	counts := map[int64]int{}
	w := NewDeviceWriter(d, 4096, false, 5)
	w.ZipfSkew = 2.0
	w.RegionLen = 1 << 20
	// Intercept via a counting pass: drive Step and read chip stats is
	// awkward; instead sample the generator's behaviour through a stub
	// device. Simpler: run on the real device and verify it works, then
	// sample the distribution directly with a second writer over a stub.
	if _, err := w.Step(1 << 20); err != nil {
		t.Fatal(err)
	}
	// Distribution check against the zipf source itself.
	rng := rand.New(rand.NewSource(5))
	z := rand.NewZipf(rng, 2.0, 1, 255)
	for i := 0; i < 10000; i++ {
		counts[int64(z.Uint64())]++
	}
	if counts[0] < 3000 {
		t.Fatalf("hottest slot got %d of 10000, want skew", counts[0])
	}
}
