// Package ops plays the ops plane for the simtaint fixtures: legally
// reading host state under an ops-domain declaration, then leaking it
// through perfectly ordinary return values. No finding fires here — the
// summaries exported for Stamp/Jitter/Where are the whole payload.
package ops

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

//flashvet:ops-domain fixture: host telemetry whose summaries must carry taint to consumers

// Stamp returns the host wall-clock; its summary must say so.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter draws from the global math/rand source.
func Jitter() int { return rand.Intn(100) }

// Where reads the process environment.
func Where() string { return os.Getenv("FLASHWEAR_CELL") }

// Pair launders Stamp through a second return slot and a struct.
type Pair struct {
	Label string
	When  int64
}

// Tagged returns (label, host time): result 1 is tainted, result 0 is a
// pure function of the parameter.
func Tagged(label string) (string, int64) {
	return label, Stamp()
}

// Via is a cross-package generic pass-through: its summary is keyed by
// the origin, so every downstream instantiation shares one ParamFlow.
func Via[T any](v T) T { return v }

// Flush returns an error that embeds host time — errors are diagnostics,
// so the taint must NOT survive into callers that propagate err.
func Flush() error {
	if Stamp()%2 == 0 {
		return fmt.Errorf("flush at %d", Stamp())
	}
	return nil
}
