package experiments

import (
	"fmt"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/simclock"
)

// DetectionRun is one row of the §4.4 "Detection" experiment.
type DetectionRun struct {
	Mode    core.AttackMode
	Report  core.AttackReport
	Profile string
}

// Detection runs the attack app on a Moto E twice — continuous and stealth
// — and reports what the OS monitors saw. The stealth run must show zero
// power attribution and zero process-monitor sightings while still
// destroying the device within a duty-cycle factor of the continuous run.
func Detection(cfg Config) ([]DetectionRun, error) {
	cfg = cfg.Defaults()
	prof := device.ProfileMotoE8()
	var out []DetectionRun
	for _, mode := range []core.AttackMode{core.Continuous, core.Stealth} {
		cfg.Progress("detection: %v attack on %s", mode, prof.Name)
		clock := simclock.New()
		phone, err := android.NewPhone(android.Config{
			Profile: prof.Scaled(cfg.Scale),
			FS:      android.FSExt4,
		}, clock)
		if err != nil {
			return nil, err
		}
		app, err := phone.InstallApp("com.innocuous.wallpaper")
		if err != nil {
			return nil, err
		}
		// Start mid-morning: screen on, on battery, so a sloppy attack is
		// maximally exposed.
		clock.AdvanceTo(10 * time.Hour)
		atk := core.NewAttack(app, mode, cfg.Scale)
		rep, err := atk.Run(phone, 10*365*24*time.Hour)
		if err != nil {
			return nil, fmt.Errorf("detection %v: %w", mode, err)
		}
		out = append(out, DetectionRun{Mode: mode, Report: rep, Profile: prof.Name})
	}
	return out, nil
}
