// Package locksafe reports mutex misuse that deadlocks or silently
// un-synchronizes the fleetd serving plane.
//
// Two checks, both motivated by real hazards in the fleetd server/engine
// (a mutexed registry serving HTTP handlers, SSE watchers on channels,
// and a self-healing supervisor loop):
//
//  1. Lock copies: a method with a value receiver — or a function with a
//     value parameter — whose type contains a sync.Mutex, sync.RWMutex,
//     sync.WaitGroup, sync.Once, or sync.Cond copies the lock on every
//     call. The copy guards nothing: two goroutines "holding" it race on
//     the state it was meant to protect, with no failure louder than
//     corrupted data.
//
//  2. Blocking under a held lock: between a Lock/RLock and its release,
//     code must not park the goroutine on something another goroutine —
//     possibly one that needs this very lock — has to complete: channel
//     sends and receives, select (unless it has a default and so cannot
//     block), sync.WaitGroup.Wait, time.Sleep, and network or subprocess
//     calls (net, net/http, os/exec). An SSE watcher blocked on a slow
//     client while holding the registry lock stalls every campaign
//     heartbeat; the journal's mutexed fsync is NOT flagged — plain file
//     IO is bounded and deliberate there (DESIGN.md §12).
//
// sync.Cond.Wait is exempt: it is specified to be called with the lock
// held (it unlocks while parked). Function literals are analyzed as
// separate bodies with no held locks: a goroutine launched under a lock
// does not itself hold it.
//
// The analysis is intraprocedural and syntactic about lock identity (the
// receiver expression's printed path, e.g. "s.mu"): it catches the
// lock-step bugs code review keeps missing, not every aliasing trick.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flashwear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "report lock copies and blocking calls under a held mutex\n\n" +
		"Value receivers/parameters containing sync primitives copy the\n" +
		"lock (guarding nothing); channel operations, select, WaitGroup.Wait,\n" +
		"time.Sleep and net/subprocess calls between Lock and Unlock park\n" +
		"the goroutine while others spin on the same lock.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pass.IsTestFile(fd.Pos()) {
				continue
			}
			checkCopies(pass, fd)
			if fd.Body != nil {
				w := &walker{pass: pass, held: make(map[string]token.Pos)}
				w.block(fd.Body)
			}
		}
	}
	return nil
}

// ---- check 1: lock copies ----

func checkCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		field := fd.Recv.List[0]
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
			if lock := copiedLock(tv.Type); lock != "" {
				pass.Reportf(field.Type.Pos(),
					"method %s has a value receiver containing %s: every call copies the lock, so it guards nothing — use a pointer receiver",
					fd.Name.Name, lock)
			}
		}
	}
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if lock := copiedLock(tv.Type); lock != "" {
			pass.Reportf(field.Type.Pos(),
				"function %s takes a parameter by value containing %s: the callee locks a copy — pass a pointer",
				fd.Name.Name, lock)
		}
	}
}

// copiedLock reports the sync primitive a by-value copy of t would copy,
// or "" if t is safe to copy. Pointers, slices, maps, channels are safe:
// the copy shares the lock.
func copiedLock(t types.Type) string {
	return lockIn(t, make(map[types.Type]bool))
}

var syncPrimitives = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
}

func lockIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncPrimitives[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockIn(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return ""
}

// ---- check 2: blocking under a held lock ----

// walker tracks the set of held locks (keyed by the printed receiver
// path) through one function body, statement by statement.
type walker struct {
	pass *analysis.Pass
	held map[string]token.Pos // lock path -> Lock() position
}

func (w *walker) holding() string {
	var names []string
	for name := range w.held {
		names = append(names, name)
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names) // deterministic order for multi-lock messages
	return strings.Join(names, ", ")
}

func (w *walker) reportBlocked(pos token.Pos, what string) {
	if locks := w.holding(); locks != "" {
		w.pass.Reportf(pos, "%s while holding %s: the goroutine parks with the lock held, stalling every contender — release first or restructure", what, locks)
	}
}

func (w *walker) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.stmt(s)
	}
}

// fork runs f against a copy of the held set, so branch-local
// Lock/Unlock pairs don't leak into the fall-through state.
func (w *walker) fork(f func(inner *walker)) {
	inner := &walker{pass: w.pass, held: make(map[string]token.Pos, len(w.held))}
	for k, v := range w.held {
		inner.held[k] = v
	}
	f(inner)
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.IfStmt:
		w.stmt2(s.Init)
		w.expr(s.Cond)
		w.fork(func(inner *walker) { inner.block(s.Body) })
		if s.Else != nil {
			w.fork(func(inner *walker) { inner.stmt(s.Else) })
		}
	case *ast.ForStmt:
		w.stmt2(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.fork(func(inner *walker) {
			inner.block(s.Body)
			inner.stmt2(s.Post)
		})
	case *ast.RangeStmt:
		// Ranging over a channel blocks on every iteration.
		if tv, ok := w.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.reportBlocked(s.Pos(), "range over channel")
			}
		}
		w.expr(s.X)
		w.fork(func(inner *walker) { inner.block(s.Body) })
	case *ast.SwitchStmt:
		w.stmt2(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.fork(func(inner *walker) {
					for _, e := range cc.List {
						inner.expr(e)
					}
					for _, st := range cc.Body {
						inner.stmt(st)
					}
				})
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt2(s.Init)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.fork(func(inner *walker) {
					for _, st := range cc.Body {
						inner.stmt(st)
					}
				})
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.reportBlocked(s.Pos(), "select with no default")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.fork(func(inner *walker) {
					for _, st := range cc.Body {
						inner.stmt(st)
					}
				})
			}
		}
	case *ast.SendStmt:
		w.reportBlocked(s.Arrow, "channel send")
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.GoStmt:
		// The launched goroutine does not hold the caller's locks; its
		// body is a FuncLit handled by expr with a fresh walker.
		w.expr(s.Call.Fun)
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() is the idiomatic release-at-return, which
		// means the lock stays held for the REST of the body — exactly
		// the window this check exists for. Recognize the deferred
		// unlock so it doesn't clear the held set, and analyze nothing
		// else about it.
		if _, _, isLock := lockSelector(w.pass, s.Call); isLock {
			break
		}
		w.expr(s.Call.Fun)
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// stmt2 is stmt for optional simple statements (inits, posts).
func (w *walker) stmt2(s ast.Stmt) {
	if s != nil {
		w.stmt(s)
	}
}

func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A separate body with no inherited locks.
			inner := &walker{pass: w.pass, held: make(map[string]token.Pos)}
			inner.block(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportBlocked(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if w.lockOp(n) {
				return false
			}
			w.checkBlockingCall(n)
		}
		return true
	})
}

// lockSelector recognizes a mu.Lock/RLock/Unlock/RUnlock/TryLock call on
// a sync.Mutex or sync.RWMutex, returning the lock's path and the method
// name.
func lockSelector(pass *analysis.Pass, call *ast.CallExpr) (path, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	if recvNamed(fn) != "Mutex" && recvNamed(fn) != "RWMutex" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	path = exprPath(sel.X)
	if path == "" {
		path = "<lock>"
	}
	return path, fn.Name(), true
}

// lockOp updates the held set for mu.Lock/RLock/Unlock/RUnlock calls and
// reports double-Lock on the same path. Returns true when the call was a
// lock operation (handled), false otherwise.
func (w *walker) lockOp(call *ast.CallExpr) bool {
	path, method, ok := lockSelector(w.pass, call)
	if !ok {
		return false
	}
	switch method {
	case "Lock", "RLock":
		if prev, dup := w.held[path]; dup {
			prevPos := w.pass.Fset.Position(prev)
			w.pass.Reportf(call.Pos(), "%s.%s with %s already held (since line %d): self-deadlock", path, method, path, prevPos.Line)
		}
		w.held[path] = call.Pos()
	case "Unlock", "RUnlock":
		delete(w.held, path)
	case "TryLock", "TryRLock":
		// Cannot block and may not acquire; recognized but not modeled.
	}
	return true
}

// blockingPkgs are packages whose calls wait on the outside world.
var blockingPkgs = map[string]string{
	"net":      "network call",
	"net/http": "HTTP call",
	"os/exec":  "subprocess call",
}

func (w *walker) checkBlockingCall(call *ast.CallExpr) {
	var fn *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = w.pass.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = w.pass.TypesInfo.Uses[f.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	name := fn.Name()
	switch {
	case pkg == "time" && name == "Sleep":
		w.reportBlocked(call.Pos(), "time.Sleep")
	case pkg == "sync" && name == "Wait" && recvNamed(fn) == "WaitGroup":
		w.reportBlocked(call.Pos(), "sync.WaitGroup.Wait")
	default:
		if what, ok := blockingPkgs[pkg]; ok {
			w.reportBlocked(call.Pos(), fmt.Sprintf("%s (%s.%s)", what, fn.Pkg().Name(), name))
		}
	}
}

func recvNamed(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// exprPath renders a lock's receiver chain ("s.mu", "reg.cells.mu") for
// identity and messages; "" for anything fancier than idents/selectors.
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprPath(e.X)
	}
	return ""
}
