package experiments

import (
	"time"

	"flashwear/internal/device"
	"flashwear/internal/workload"
)

// HealingRow is one variant of the self-healing extension study.
type HealingRow struct {
	Variant string
	// PhysicalWearPct is the chips' mean *effective* wear after the
	// duty-cycled workload — erase stress net of detrapping. (The JEDEC
	// indicator counts raw erases and cannot see healing; the physics
	// can.)
	PhysicalWearPct float64
}

// Healing runs the §2.2 extension: "over a long period, flash can heal as
// trapped charge dissipates". The same bursty workload (write a burst, idle
// for hours, repeat) runs on a normal chip and on one that detraps while
// idle; the healing chip ends with measurably less consumed life. Shipping
// mobile firmware does not rely on this ("not yet widely used"), which is
// why the main experiments leave it off.
func Healing(cfg Config) ([]HealingRow, error) {
	cfg = cfg.Defaults()
	var out []HealingRow
	for _, healRate := range []float64{0, 25} {
		prof := device.ProfileEMMC8()
		prof.RatedPE = 300 // short-lived variant keeps the study quick
		prof.FirmwareRatedPE = 300
		prof.HealPerIdleHour = healRate
		dev, clock, _, err := newDevice(prof, cfg.Scale)
		if err != nil {
			return nil, err
		}
		w := workload.NewDeviceWriter(dev, 4096, false, 61)
		w.RegionLen = dev.Size() / 16
		// Duty cycle: burst 32 MiB, then idle 12 simulated hours.
		for cycle := 0; cycle < 40; cycle++ {
			var burst int64
			for burst < 32<<20 {
				n, err := w.Step(4 << 20)
				burst += n
				if err != nil {
					return nil, err
				}
			}
			clock.Advance(12 * time.Hour)
		}
		variant := "no healing"
		if healRate > 0 {
			variant = "heal-leveling on"
		}
		out = append(out, HealingRow{
			Variant:         variant,
			PhysicalWearPct: dev.FTL().MainChip().AvgWear() * 100,
		})
	}
	return out, nil
}
