// Package sim launders nondeterminism through data flow the syntactic
// analyzers (wallclock, globalrand, maporder) provably cannot see: no
// banned call appears in this file at all, yet every labelled path must
// end in a simtaint finding at the sink. The clean idioms at the bottom
// pin the analysis's precision: spec-derived values, sorted map
// collections, and ops-data that never reaches a sink stay silent.
package sim

import (
	"fmt"
	"sort"

	"flashwear/internal/analysis/testdata/src/simtaint/ops"
)

var persisted []int64
var persistedNames []string

// record appends v to the fixture's pretend snapshot.
//
//flashvet:sim-sink fixture snapshot record
func record(v int64) { persisted = append(persisted, v) }

// recordAll persists a batch, order and all.
//
//flashvet:sim-sink fixture snapshot batch
func recordAll(vs []string) { persistedNames = append(persistedNames, vs...) }

// journal forwards to record: its callers are sinks transitively, with
// no directive of their own.
func journal(v int64) { record(v) }

// CrossPackageReturn is the case the wallclock pass provably misses:
// time.Now never appears in this package, only its value does.
func CrossPackageReturn() {
	t := ops.Stamp()
	record(t) // want `wallclock \(from time\.Now\) value flows into sim-persistent sink record \(fixture snapshot record\)`
}

// StructField launders the value through a field write and read-back.
func StructField() {
	type state struct {
		when int64
		seq  int
	}
	var s state
	s.when = ops.Stamp()
	s.seq++
	record(s.when) // want `wallclock .* sink record`
}

// Closure launders the value through a captured variable.
func Closure() {
	now := ops.Stamp()
	get := func() int64 { return now }
	record(get()) // want `wallclock .* sink record`
}

// Channel launders the value through a buffered channel.
func Channel() {
	ch := make(chan int64, 1)
	ch <- ops.Stamp()
	record(<-ch) // want `wallclock .* sink record`
}

// Transitive reaches the sink through journal, which carries the sink
// property in its summary rather than a directive.
func Transitive() {
	journal(ops.Stamp()) // want `wallclock .* sink journal \(fixture snapshot record\)`
}

// identity is the generics laundering path: the summary is computed once
// for the origin and applies to every instantiation.
func identity[T any](v T) T { return v }

// Generic launders the value through a type-parameterized call.
func Generic() {
	record(identity(ops.Stamp())) // want `wallclock .* sink record`
}

// GenericCrossPackage launders the value through a generic declared in a
// different package: the imported summary for ops.Via's origin must carry
// the parameter flow for every instantiation.
func GenericCrossPackage() {
	record(ops.Via(ops.Stamp())) // want `wallclock .* sink record`
}

// Formatted launders the value through an unknown external (fmt.Sprintf):
// conservative propagation keeps the taint.
func Formatted() {
	recordAll([]string{fmt.Sprintf("t=%d", ops.Stamp())}) // want `wallclock .* sink recordAll`
}

// SecondResult pins per-result precision: only result 1 of ops.Tagged is
// tainted, so persisting result 0 is clean and result 1 is not.
func SecondResult() {
	label, when := ops.Tagged("cell-7")
	recordAll([]string{label})
	record(when) // want `wallclock .* sink record`
}

// RandAndEnv cover the other taint kinds end to end.
func RandAndEnv() {
	record(int64(ops.Jitter()))      // want `rand \(from rand\.Intn\) value flows into sim-persistent sink record`
	recordAll([]string{ops.Where()}) // want `hostenv \(from os\.Getenv\) value flows into sim-persistent sink recordAll`
}

// MapOrder grows a slice under map iteration and persists it unsorted.
func MapOrder(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	recordAll(keys) // want `maporder \(from range over map\) value flows into sim-persistent sink recordAll`
}

// KeyedRebuild deep-copies a map into a map keyed by the range key —
// the appends build fresh per-key values, not an iteration-ordered
// slice, so content is order-independent and persisting a value derived
// from it is clean.
func KeyedRebuild(src map[string][]byte) {
	dst := make(map[string][]byte, len(src))
	var total int64
	for k, v := range src {
		dst[k] = append([]byte(nil), v...)
		total += int64(len(dst[k]))
	}
	record(total)
}

// HandleConfig writes host data into an ops-plane object — the
// sanctioned sim→ops direction; the handle does not become sim-tainted.
func HandleConfig(p *ops.Pair) {
	p.When = ops.Stamp()
	record(int64(len(p.Label)))
}

// ErrorPropagation persists an error's text. Errors are host
// diagnostics, not sim data — their producer's taint is cleared: clean.
func ErrorPropagation() {
	if err := ops.Flush(); err != nil {
		recordAll([]string{err.Error()})
	}
}

// Sorted is the sanctioned collect-sort-persist idiom: clean.
func Sorted(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recordAll(keys)
}

// SpecDriven persists values computed from parameters only: clean.
func SpecDriven(seed int64, name string) {
	record(seed * 2)
	recordAll([]string{name})
}

// OpsDataUnsunk reads host state but never persists it: clean — simtaint
// bans flows into sinks, not possession.
func OpsDataUnsunk() string {
	return fmt.Sprintf("observed at %d", ops.Stamp())
}

// Waived shows a reviewed flow silenced like any other finding.
func Waived() {
	record(ops.Stamp()) //flashvet:ignore simtaint fixture: display-only echo of ops data, reviewed
}

//flashvet:sim-sink
func BadSink(v int64) { persisted = append(persisted, v) } // want `flashvet:sim-sink declaration has no description`
