package report

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, v := range []float64{-1, 0, 0.5, 5, 9.999, 10, 42} {
		h.Add(v)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if got := h.Total(); got != 7 {
		t.Errorf("Total = %d, want 7", got)
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	// A value just below Max must not index past the last bucket even when
	// float division rounds up.
	h := NewHistogram(0, 0.3, 3)
	h.Add(math.Nextafter(0.3, 0))
	if h.Counts[2] != 1 || h.Over != 0 {
		t.Errorf("Counts = %v Over = %d, want last bucket hit", h.Counts, h.Over)
	}
}

func TestHistogramMergeGeometry(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 5)
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge accepted mismatched geometry")
	}
}

func TestHistogramMergeOrderIndependent(t *testing.T) {
	vals := []float64{1, 2, 3, 4.5, 7, 9, 9, 11, -3}
	whole := NewHistogram(0, 10, 20)
	for _, v := range vals {
		whole.Add(v)
	}
	// Split the observations across three shards merged in a different
	// order; the merged state must be identical to the sequential one.
	shards := []*Histogram{NewHistogram(0, 10, 20), NewHistogram(0, 10, 20), NewHistogram(0, 10, 20)}
	for i, v := range vals {
		shards[i%3].Add(v)
	}
	merged := NewHistogram(0, 10, 20)
	for _, i := range []int{2, 0, 1} {
		if err := merged.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(whole, merged) {
		t.Errorf("merged = %+v, want %+v", merged, whole)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for v := 0; v < 100; v++ {
		h.Add(float64(v) + 0.5)
	}
	for _, tc := range []struct{ p, want, tol float64 }{
		{0.5, 50, 1.0},
		{0.9, 90, 1.0},
		{0.0, 0, 1.0},
		{1.0, 100, 1.0},
	} {
		if got := h.Percentile(tc.p); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Percentile(%g) = %g, want %g±%g", tc.p, got, tc.want, tc.tol)
		}
	}
	if got := h.Mean(); math.Abs(got-50) > 1 {
		t.Errorf("Mean = %g, want ~50", got)
	}
}

func TestHistogramPercentileEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("Percentile(%g) on empty = %g, want 0", p, got)
		}
	}
	// Mean keeps its NaN contract: callers that want a plottable value
	// guard on Total() themselves (telemetry does).
	if got := h.Mean(); !math.IsNaN(got) {
		t.Errorf("Mean on empty = %g, want NaN", got)
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	// Merging empty shards — a fleet worker that drew no devices — must
	// be a no-op in both directions and keep percentiles well-defined.
	empty, other := NewHistogram(0, 10, 10), NewHistogram(0, 10, 10)
	other.Add(3)
	other.Add(7)
	want := *other
	wantCounts := append([]int64(nil), other.Counts...)
	if err := other.Merge(empty); err != nil {
		t.Fatal(err)
	}
	if other.Under != want.Under || other.Over != want.Over || !reflect.DeepEqual(other.Counts, wantCounts) {
		t.Errorf("merge of empty changed counts: %+v", other)
	}
	if err := empty.Merge(NewHistogram(0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if got := empty.Total(); got != 0 {
		t.Errorf("empty+empty Total = %d, want 0", got)
	}
	if got := empty.Percentile(0.5); got != 0 {
		t.Errorf("empty+empty Percentile(0.5) = %g, want 0", got)
	}
}

func TestHistogramCSV(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(-1)
	h.Add(1.5)
	h.AddN(2.5, 3)
	h.Add(9)
	var sb strings.Builder
	h.RenderCSV(&sb, "days")
	want := "days_lo,days_hi,count\n-inf,0,1\n1,2,1\n2,3,3\n4,+inf,1\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestPercentilesHelper(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for v := 0; v < 10; v++ {
		h.AddN(float64(v)+0.5, 1)
	}
	got := Percentiles(h, 0.1, 0.5, 0.9)
	if len(got) != 3 || got[0] >= got[1] || got[1] >= got[2] {
		t.Errorf("Percentiles not monotone: %v", got)
	}
}
