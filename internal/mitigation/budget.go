// Package mitigation implements the defences §4.5 sketches: exposing the
// wear indicator to users (S.M.A.R.T.-style health watching), per-app I/O
// statistics, lifespan-preserving rate limiting, and a heuristic classifier
// that distinguishes malicious write patterns from benign bursts so only
// the former are throttled.
package mitigation

import (
	"fmt"
	"time"
)

// LifespanBudget computes the sustainable write rate for a device: the
// inverse of §2.3's back-of-the-envelope, used defensively. If the device
// should survive TargetYears, applications may collectively write at most
// BytesPerDay per day.
type LifespanBudget struct {
	CapacityBytes int64
	RatedPE       int
	TargetYears   float64
	// ExpectedWA derates the budget for write amplification below the
	// host interface. Defaults to 2 (conservative, per §4.3's findings).
	ExpectedWA float64
}

// Validate reports the first invalid field.
func (b LifespanBudget) Validate() error {
	switch {
	case b.CapacityBytes <= 0:
		return fmt.Errorf("mitigation: budget capacity %d", b.CapacityBytes)
	case b.RatedPE <= 0:
		return fmt.Errorf("mitigation: budget rated P/E %d", b.RatedPE)
	case b.TargetYears <= 0:
		return fmt.Errorf("mitigation: budget target %v years", b.TargetYears)
	case b.ExpectedWA < 0:
		return fmt.Errorf("mitigation: budget WA %v", b.ExpectedWA)
	}
	return nil
}

func (b LifespanBudget) wa() float64 {
	if b.ExpectedWA == 0 {
		return 2
	}
	return b.ExpectedWA
}

// TotalHostBytes is the host write volume the device can absorb in its
// whole target life.
func (b LifespanBudget) TotalHostBytes() float64 {
	return float64(b.CapacityBytes) * float64(b.RatedPE) / b.wa()
}

// BytesPerDay is the sustainable daily budget.
func (b LifespanBudget) BytesPerDay() float64 {
	return b.TotalHostBytes() / (b.TargetYears * 365)
}

// BytesPerSecond is the sustainable rate.
func (b LifespanBudget) BytesPerSecond() float64 {
	return b.BytesPerDay() / (24 * 3600)
}

// TokenBucket is a deterministic token bucket over simulated time.
type TokenBucket struct {
	Rate  float64 // tokens (bytes) per second
	Burst float64 // bucket capacity

	tokens float64
	last   time.Duration
	primed bool
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{Rate: rate, Burst: burst, tokens: burst}
}

// Take consumes n bytes at simulated time now, returning how long the
// caller must stall to respect the rate. The debt is recorded either way
// (the I/O has already been issued; the delay back-pressures the next one).
func (tb *TokenBucket) Take(n int64, now time.Duration) time.Duration {
	if !tb.primed {
		tb.primed = true
		tb.last = now
	}
	if now > tb.last {
		tb.tokens += tb.Rate * (now - tb.last).Seconds()
		if tb.tokens > tb.Burst {
			tb.tokens = tb.Burst
		}
		tb.last = now
	}
	tb.tokens -= float64(n)
	if tb.tokens >= 0 {
		return 0
	}
	if tb.Rate <= 0 {
		return time.Hour // effectively blocked
	}
	return time.Duration(-tb.tokens / tb.Rate * float64(time.Second))
}
