package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	data := make([]byte, HammingDataBytes)
	for i := range data {
		data[i] = byte(i * 7)
	}
	cw := Encode(data)
	n, err := Decode(&cw)
	if err != nil || n != 0 {
		t.Fatalf("Decode(clean) = (%d, %v), want (0, nil)", n, err)
	}
	if !bytes.Equal(cw.Data[:], data) {
		t.Fatal("clean decode mutated data")
	}
}

func TestSingleDataBitErrorCorrected(t *testing.T) {
	data := make([]byte, HammingDataBytes)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	for bit := 0; bit < hammingDataBits; bit++ {
		cw := Encode(data)
		cw.FlipDataBit(bit)
		n, err := Decode(&cw)
		if err != nil {
			t.Fatalf("bit %d: Decode = %v, want corrected", bit, err)
		}
		if n != 1 {
			t.Fatalf("bit %d: corrected = %d, want 1", bit, n)
		}
		if !bytes.Equal(cw.Data[:], data) {
			t.Fatalf("bit %d: data not restored", bit)
		}
	}
}

func TestSingleParityBitErrorCorrected(t *testing.T) {
	data := make([]byte, HammingDataBytes)
	for i := range data {
		data[i] = byte(255 - i)
	}
	for k := 0; k <= hammingParity; k++ {
		cw := Encode(data)
		want := cw.Parity
		cw.FlipParityBit(k)
		n, err := Decode(&cw)
		if err != nil {
			t.Fatalf("parity bit %d: Decode = %v, want corrected", k, err)
		}
		if n != 1 {
			t.Fatalf("parity bit %d: corrected = %d, want 1", k, n)
		}
		if cw.Parity != want {
			t.Fatalf("parity bit %d: parity not restored: got %04x want %04x", k, cw.Parity, want)
		}
		if !bytes.Equal(cw.Data[:], data) {
			t.Fatalf("parity bit %d: data corrupted by parity repair", k)
		}
	}
}

func TestDoubleBitErrorDetected(t *testing.T) {
	data := make([]byte, HammingDataBytes)
	rng := rand.New(rand.NewSource(2))
	rng.Read(data)
	for trial := 0; trial < 500; trial++ {
		a := rng.Intn(hammingDataBits)
		b := rng.Intn(hammingDataBits)
		for b == a {
			b = rng.Intn(hammingDataBits)
		}
		cw := Encode(data)
		cw.FlipDataBit(a)
		cw.FlipDataBit(b)
		if _, err := Decode(&cw); err != ErrDetected {
			t.Fatalf("bits (%d,%d): Decode err = %v, want ErrDetected", a, b, err)
		}
	}
}

func TestDataPlusParityDoubleErrorDetected(t *testing.T) {
	data := make([]byte, HammingDataBytes)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	for trial := 0; trial < 200; trial++ {
		cw := Encode(data)
		cw.FlipDataBit(rng.Intn(hammingDataBits))
		cw.FlipParityBit(rng.Intn(hammingParity)) // not the overall bit
		if _, err := Decode(&cw); err != ErrDetected {
			t.Fatalf("trial %d: Decode err = %v, want ErrDetected", trial, err)
		}
	}
}

func TestEncodeWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode(short) did not panic")
		}
	}()
	Encode(make([]byte, 10))
}

func TestDecodeNil(t *testing.T) {
	if _, err := Decode(nil); err != ErrCodeword {
		t.Fatalf("Decode(nil) err = %v, want ErrCodeword", err)
	}
}

func TestDataPositionsAreUniqueNonPowers(t *testing.T) {
	seen := map[int]bool{}
	for _, p := range dataPositions {
		if p&(p-1) == 0 {
			t.Fatalf("position %d is a power of two (reserved for parity)", p)
		}
		if seen[p] {
			t.Fatalf("position %d duplicated", p)
		}
		seen[p] = true
	}
}

// Property: for any payload and any single flipped data bit, decode restores
// the payload exactly.
func TestQuickSingleErrorRoundTrip(t *testing.T) {
	f := func(payload [HammingDataBytes]byte, bit uint16) bool {
		b := int(bit) % hammingDataBits
		cw := Encode(payload[:])
		cw.FlipDataBit(b)
		n, err := Decode(&cw)
		return err == nil && n == 1 && bytes.Equal(cw.Data[:], payload[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode then decode with no corruption is the identity and
// reports zero corrections.
func TestQuickCleanRoundTrip(t *testing.T) {
	f := func(payload [HammingDataBytes]byte) bool {
		cw := Encode(payload[:])
		n, err := Decode(&cw)
		return err == nil && n == 0 && bytes.Equal(cw.Data[:], payload[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
