package report

import (
	"fmt"
	"io"
	"math"
)

// Histogram counts observations in fixed-width buckets over [Min, Max).
// Values below Min land in Under, values at or above Max in Over, so no
// observation is ever dropped. All state is integral, which makes Merge
// exactly associative and commutative: merging per-worker histograms yields
// byte-identical results regardless of how a fleet run was partitioned —
// the property the fleet determinism tests assert.
// The bucket counts live in an embedded Sketch (see sketch.go), so the
// merge core is shared with fleetd's streaming aggregates; Counts, Under,
// and Over remain accessible as promoted fields.
type Histogram struct {
	Min, Max float64
	Sketch
}

// NewHistogram creates a histogram with the given bucket count over
// [min, max). It panics on a non-positive bucket count or an empty range,
// which are programming errors.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic(fmt.Sprintf("report: NewHistogram: buckets = %d", buckets))
	}
	if !(max > min) {
		panic(fmt.Sprintf("report: NewHistogram: empty range [%g, %g)", min, max))
	}
	return &Histogram{Min: min, Max: max, Sketch: NewSketch(buckets)}
}

// BucketWidth returns the width of one bucket.
func (h *Histogram) BucketWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// Add records one observation.
func (h *Histogram) Add(v float64) { h.AddN(v, 1) }

// AddN records n observations of the same value.
func (h *Histogram) AddN(v float64, n int64) {
	switch {
	case v < h.Min:
		h.Under += n
	case v >= h.Max:
		h.Over += n
	default:
		i := int((v - h.Min) / h.BucketWidth())
		if i >= len(h.Counts) { // float round-up at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i] += n
	}
}

// Merge adds o's counts into h. The two histograms must share a geometry.
func (h *Histogram) Merge(o *Histogram) error {
	if o.Min != h.Min || o.Max != h.Max || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("report: Merge: geometry mismatch [%g,%g)x%d vs [%g,%g)x%d",
			h.Min, h.Max, len(h.Counts), o.Min, o.Max, len(o.Counts))
	}
	return h.MergeSketch(o.Sketch)
}

// Percentile returns the value below which fraction p (in [0, 1]) of the
// observations fall, linearly interpolated within its bucket. Underflow
// reports Min and overflow reports Max (the histogram does not retain exact
// out-of-range values). An empty histogram returns 0: percentiles feed
// summary tables and telemetry columns, where a NaN would poison CSV diffs
// and JSON encoding without carrying any more information.
func (h *Histogram) Percentile(p float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(total)
	cum := float64(h.Under)
	if target <= cum && h.Under > 0 {
		return h.Min
	}
	w := h.BucketWidth()
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if target <= cum+float64(c) {
			lo := h.Min + float64(i)*w
			return lo + w*(target-cum)/float64(c)
		}
		cum += float64(c)
	}
	return h.Max
}

// Mean approximates the mean using bucket midpoints; under- and overflow
// contribute Min and Max. An empty histogram returns NaN.
func (h *Histogram) Mean() float64 {
	total := h.Total()
	if total == 0 {
		return math.NaN()
	}
	w := h.BucketWidth()
	sum := float64(h.Under)*h.Min + float64(h.Over)*h.Max
	for i, c := range h.Counts {
		if c != 0 {
			sum += float64(c) * (h.Min + (float64(i)+0.5)*w)
		}
	}
	return sum / float64(total)
}

// Percentiles evaluates several percentiles at once, in the given order.
func Percentiles(h *Histogram, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = h.Percentile(p)
	}
	return out
}

// RenderCSV writes the histogram as "bucket_lo,bucket_hi,count" rows under
// a header, skipping empty buckets outside the occupied range. Under- and
// overflow are emitted as rows with -inf/+inf edges when present.
func (h *Histogram) RenderCSV(w io.Writer, label string) {
	fmt.Fprintf(w, "%s_lo,%s_hi,count\n", label, label)
	if h.Under > 0 {
		fmt.Fprintf(w, "-inf,%g,%d\n", h.Min, h.Under)
	}
	first, last := -1, -1
	for i, c := range h.Counts {
		if c != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	bw := h.BucketWidth()
	for i := first; i >= 0 && i <= last; i++ {
		lo := h.Min + float64(i)*bw
		fmt.Fprintf(w, "%g,%g,%d\n", lo, lo+bw, h.Counts[i])
	}
	if h.Over > 0 {
		fmt.Fprintf(w, "%g,+inf,%d\n", h.Max, h.Over)
	}
}
