package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch: a comment of the form
//
//	//flashvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses the named analyzers' diagnostics on one line — the comment's
// own line when it trails code, or the next line when it stands alone. The
// reason is mandatory: an ignore that cannot say why it exists is itself a
// diagnostic, as is one naming an unknown analyzer or one that suppresses
// nothing (so stale waivers cannot outlive the code they excused).
const ignorePrefix = "flashvet:ignore"

// A directive is one parsed //flashvet:ignore comment.
type directive struct {
	pos       token.Pos // of the comment, for reporting problems
	file      string
	line      int // line the directive applies to
	analyzers []string
	reason    string
	problem   string          // non-empty if malformed; reported, never applied
	used      map[string]bool // analyzer name -> suppressed something
}

// collectDirectives parses every flashvet:ignore comment in the package.
// known maps valid analyzer names; src holds file contents keyed by
// filename (used to tell trailing comments from standalone ones).
func collectDirectives(fset *token.FileSet, files []*ast.File, src map[string][]byte, known map[string]bool) []*directive {
	var dirs []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				d := parseDirective(c.Pos(), text, known)
				pos := fset.Position(c.Pos())
				d.file = pos.Filename
				d.line = pos.Line
				if standalone(src[pos.Filename], pos) {
					// The comment owns its line: it governs the next one.
					d.line = fset.Position(c.End()).Line + 1
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

func parseDirective(pos token.Pos, text string, known map[string]bool) *directive {
	d := &directive{pos: pos, used: map[string]bool{}}
	// An embedded "//" ends the directive: what follows is ordinary
	// commentary, not part of the reason.
	if i := strings.Index(text, "//"); i >= 0 {
		text = text[:i]
	}
	if text != "" && !strings.HasPrefix(text, " ") && !strings.HasPrefix(text, "\t") {
		d.problem = fmt.Sprintf("malformed %s directive: want //%s <analyzer> <reason>", ignorePrefix, ignorePrefix)
		return d
	}
	names, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
	if names == "" {
		d.problem = fmt.Sprintf("%s directive names no analyzer: want //%s <analyzer> <reason>", ignorePrefix, ignorePrefix)
		return d
	}
	for _, name := range strings.Split(names, ",") {
		if !known[name] {
			d.problem = fmt.Sprintf("%s directive names unknown analyzer %q", ignorePrefix, name)
			return d
		}
		d.analyzers = append(d.analyzers, name)
	}
	d.reason = strings.TrimSpace(reason)
	if d.reason == "" {
		d.problem = fmt.Sprintf("%s %s directive has no reason: every waiver must say why the invariant does not bind", ignorePrefix, names)
	}
	return d
}

// standalone reports whether the comment at pos is the first token on its
// line (only whitespace before it), as opposed to trailing code.
func standalone(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return false // no source available: treat as trailing (same line)
	}
	for i := pos.Offset - pos.Column + 1; i < pos.Offset; i++ {
		if src[i] != ' ' && src[i] != '\t' {
			return false
		}
	}
	return true
}

// matches reports whether d suppresses a diagnostic from the named
// analyzer at file:line, and marks it used if so.
func (d *directive) matches(name, file string, line int) bool {
	if d.problem != "" || d.file != file || d.line != line {
		return false
	}
	for _, a := range d.analyzers {
		if a == name {
			d.used[name] = true
			return true
		}
	}
	return false
}
