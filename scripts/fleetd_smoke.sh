#!/usr/bin/env bash
# fleetd end-to-end smoke: submit a checkpointed campaign, kill -9 the
# server mid-run, restart it, resume, and require the final artifacts —
# day series, wear ledger, final aggregate, and the sim-domain journal
# events — to be byte-identical to an uninterrupted run of the same
# campaign. Also exercises the ops plane: /metrics must serve non-empty
# Prometheus output and the crash-surviving event journal must keep its
# sequence numbers contiguous across the kill. This is the ISSUE's
# kill-and-resume acceptance check at CI scale; the in-process
# equivalents (more seeds, more shard/worker shapes) live in
# internal/fleetd's tests.
#
# Everything runs in a mktemp -d scratch dir, removed on exit. Set
# FLEETD_SMOKE_ARTIFACTS to a directory to keep copies of the fetched
# artifacts (CI uploads these).
set -euo pipefail

cd "$(dirname "$0")/.."
OUT=$(mktemp -d "${TMPDIR:-/tmp}/fleetd-smoke.XXXXXX")

SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    if [ -n "${FLEETD_SMOKE_ARTIFACTS:-}" ]; then
        mkdir -p "$FLEETD_SMOKE_ARTIFACTS"
        cp "$OUT"/*.csv "$OUT"/*.json "$OUT"/*.jsonl "$OUT"/*.txt "$OUT"/*.log "$FLEETD_SMOKE_ARTIFACTS/" 2>/dev/null || true
    fi
    rm -rf "$OUT"
}
trap cleanup EXIT

go build -o "$OUT/fleetd" ./cmd/fleetd

ADDR="127.0.0.1:${FLEETD_SMOKE_PORT:-17071}"
BASE="http://$ADDR"
SPEC='{"name":"smoke","devices":6,"days":12,"seed":7,"scale":65536,"buggy":0.2,"attack":0.2,"wear_trace":true,"shards":2,"workers":2,"checkpoint_every":2}'

start_server() { # $1 = data dir, rest = extra serve flags
    local data="$1"; shift
    "$OUT/fleetd" serve -addr "$ADDR" -data "$data" "$@" 2>>"$OUT/server.log" &
    SERVER_PID=$!
    for _ in $(seq 1 50); do
        if curl -sf "$BASE/v1/campaigns" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "fleetd_smoke: server did not come up on $ADDR" >&2
    exit 1
}

fetch_artifacts() { # $1 = campaign id, $2 = prefix
    curl -sf "$BASE/v1/campaigns/$1/series" >"$OUT/$2-series.csv"
    curl -sf "$BASE/v1/campaigns/$1/ledger" >"$OUT/$2-ledger.csv"
    curl -sf "$BASE/v1/campaigns/$1/result" >"$OUT/$2-result.json"
    curl -sf "$BASE/v1/campaigns/$1/events?format=jsonl" >"$OUT/$2-events.jsonl"
    # The determinism comparison covers only sim-domain events, shorn of
    # their ops envelope (seq, wall_ms): scheduling and process history
    # legitimately change the ops events around them.
    grep '"sim":true' "$OUT/$2-events.jsonl" \
        | sed -e 's/"seq":[0-9]*,//' -e 's/"wall_ms":[0-9]*,//' >"$OUT/$2-sim-events.jsonl"
}

check_journal() { # $1 = prefix: non-empty journal, seq contiguous from 1
    [ -s "$OUT/$1-events.jsonl" ] || { echo "fleetd_smoke: $1 journal is empty" >&2; exit 1; }
    sed -n 's/.*"seq":\([0-9]*\).*/\1/p' "$OUT/$1-events.jsonl" | awk '
        $1 != NR { printf "fleetd_smoke: seq %s at journal line %d (gap or duplicate)\n", $1, NR; exit 1 }'
}

check_no_tmp() { # $1 = data dir: adoption must have swept checkpoint temporaries
    STRAYS=$(find "$1" -name '*.tmp' 2>/dev/null || true)
    [ -z "$STRAYS" ] || { echo "fleetd_smoke: stray checkpoint temporaries after restart:" >&2; echo "$STRAYS" >&2; exit 1; }
}

echo "fleetd_smoke: reference run (uninterrupted, runtrace recording on)"
start_server "$OUT/data-ref"
# Record execution spans for the whole reference run. The crash and fault
# runs below record nothing — the byte-identical comparisons at the end
# double as the tracing-is-invisible check (DESIGN.md §14).
"$OUT/fleetd" trace -addr "$BASE" start >/dev/null
REF_ID=$(curl -sf -X POST -d "$SPEC" "$BASE/v1/campaigns" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
"$OUT/fleetd" wait -addr "$BASE" -every 500ms "$REF_ID" >/dev/null
fetch_artifacts "$REF_ID" ref
check_journal ref
curl -sf "$BASE/metrics" >"$OUT/metrics.txt"
[ -s "$OUT/metrics.txt" ] || { echo "fleetd_smoke: /metrics is empty" >&2; exit 1; }
grep -q '^fleetd_cells_computed_total ' "$OUT/metrics.txt" \
    || { echo "fleetd_smoke: /metrics missing fleetd_cells_computed_total" >&2; exit 1; }
grep -q '^# TYPE fleetd_phase_seconds histogram$' "$OUT/metrics.txt" \
    || { echo "fleetd_smoke: /metrics missing the fleetd_phase_seconds histogram" >&2; exit 1; }
grep -q '^fleetd_runtime_goroutines ' "$OUT/metrics.txt" \
    || { echo "fleetd_smoke: /metrics missing fleetd_runtime_goroutines" >&2; exit 1; }
# Trace round-trip: stop the window, fetch the Chrome trace-event file,
# and require real simulate spans in it.
"$OUT/fleetd" trace -addr "$BASE" stop >/dev/null
"$OUT/fleetd" trace -addr "$BASE" -o "$OUT/trace.json" fetch 2>/dev/null
grep -q '"traceEvents"' "$OUT/trace.json" \
    || { echo "fleetd_smoke: fetched trace is not a Chrome trace-event file" >&2; exit 1; }
grep -q '"simulate"' "$OUT/trace.json" \
    || { echo "fleetd_smoke: fetched trace has no simulate spans" >&2; exit 1; }
# The Go profiling endpoints ride the same ops plane.
curl -sf "$BASE/debug/pprof/" >/dev/null \
    || { echo "fleetd_smoke: /debug/pprof/ not serving" >&2; exit 1; }
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

echo "fleetd_smoke: interrupted run (kill -9 mid-campaign)"
start_server "$OUT/data-crash"
CRASH_ID=$(curl -sf -X POST -d "$SPEC" "$BASE/v1/campaigns" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
sleep 1.5  # let it commit some epochs, then die mid-write
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

echo "fleetd_smoke: restart, resume, finish"
start_server "$OUT/data-crash"
# A kill -9 can land mid-checkpoint-write; adoption must leave the data
# dir consistent — every cell fully renamed, every orphaned .tmp swept.
check_no_tmp "$OUT/data-crash"
STATE=$(curl -sf "$BASE/v1/campaigns/$CRASH_ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
[ "$STATE" = "paused" ] || { echo "fleetd_smoke: adopted state = $STATE, want paused" >&2; exit 1; }
curl -sf -X POST "$BASE/v1/campaigns/$CRASH_ID/resume" >/dev/null
"$OUT/fleetd" wait -addr "$BASE" -every 500ms "$CRASH_ID" >/dev/null
fetch_artifacts "$CRASH_ID" crash
# The journal survived a kill -9 (fsync-per-append JSONL): still
# non-empty and contiguously sequenced across the process boundary.
check_journal crash
grep -q '"type":"adopted"' "$OUT/crash-events.jsonl" \
    || { echo "fleetd_smoke: crash journal lost the adoption record" >&2; exit 1; }
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

echo "fleetd_smoke: bad-disk run (host-fault injection + kill -9 mid-checkpoint)"
# Checkpoint syncs fail EIO on a schedule and one journal write hits
# ENOSPC: the server must retry/degrade per DESIGN.md §13 while the
# campaign keeps its results exact. The kill lands while checkpoints are
# in flight, so the restart also proves the .tmp sweep.
FAULT_PLAN='class=checkpoint,fault=eio,on=sync,at=2;5;9|class=journal,fault=enospc,on=write,at=4'
start_server "$OUT/data-fault" -host-fault-plan "$FAULT_PLAN"
FAULT_ID=$(curl -sf -X POST -d "$SPEC" "$BASE/v1/campaigns" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
sleep 1.5  # die with checkpoints in flight under the fault plan
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

echo "fleetd_smoke: restart on a healed disk, resume, finish"
start_server "$OUT/data-fault"
check_no_tmp "$OUT/data-fault"
STATE=$(curl -sf "$BASE/v1/campaigns/$FAULT_ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
[ "$STATE" = "paused" ] || { echo "fleetd_smoke: fault-run adopted state = $STATE, want paused" >&2; exit 1; }
curl -sf -X POST "$BASE/v1/campaigns/$FAULT_ID/resume" >/dev/null
"$OUT/fleetd" wait -addr "$BASE" -every 500ms "$FAULT_ID" >/dev/null
fetch_artifacts "$FAULT_ID" fault
check_journal fault
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

cmp "$OUT/ref-series.csv" "$OUT/crash-series.csv"
cmp "$OUT/ref-ledger.csv" "$OUT/crash-ledger.csv"
cmp "$OUT/ref-result.json" "$OUT/crash-result.json"
cmp "$OUT/ref-sim-events.jsonl" "$OUT/crash-sim-events.jsonl"
cmp "$OUT/ref-series.csv" "$OUT/fault-series.csv"
cmp "$OUT/ref-ledger.csv" "$OUT/fault-ledger.csv"
cmp "$OUT/ref-result.json" "$OUT/fault-result.json"
cmp "$OUT/ref-sim-events.jsonl" "$OUT/fault-sim-events.jsonl"
echo "fleetd_smoke: OK — kill -9 + resume (clean and faulty disk) is byte-identical to the uninterrupted run (series, ledger, result, sim events)"
