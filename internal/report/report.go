// Package report renders experiment results as aligned ASCII tables and
// CSV series, the way the harness binaries print the paper's figures and
// tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var b strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	header := strings.TrimRight(b.String(), " ")
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, row := range t.rows {
		var rb strings.Builder
		for i, c := range row {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&rb, "%-*s  ", width, c)
		}
		fmt.Fprintln(w, strings.TrimRight(rb.String(), " "))
	}
}

// Series is a named sequence of (x, y) points — one curve of a figure.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	XLabel string
	YLabel string
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// RenderCSV writes one or more series as CSV with a shared x column. All
// series must have identical x values; mismatches render as separate
// blocks.
func RenderCSV(w io.Writer, series ...*Series) {
	if len(series) == 0 {
		return
	}
	aligned := true
	for _, s := range series[1:] {
		if len(s.X) != len(series[0].X) {
			aligned = false
			break
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				aligned = false
				break
			}
		}
	}
	if aligned {
		xl := series[0].XLabel
		if xl == "" {
			xl = "x"
		}
		fmt.Fprintf(w, "%s", xl)
		for _, s := range series {
			fmt.Fprintf(w, ",%s", s.Name)
		}
		fmt.Fprintln(w)
		for i := range series[0].X {
			fmt.Fprintf(w, "%g", series[0].X[i])
			for _, s := range series {
				fmt.Fprintf(w, ",%.3f", s.Y[i])
			}
			fmt.Fprintln(w)
		}
		return
	}
	for _, s := range series {
		fmt.Fprintf(w, "# %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(w, "%g,%.3f\n", s.X[i], s.Y[i])
		}
	}
}

// BarChart renders labelled values as horizontal ASCII bars, scaled to the
// largest value — a terminal rendition of the paper's bar figures.
type BarChart struct {
	Title  string
	Unit   string
	Width  int // bar width in characters; default 50
	labels []string
	values []float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 50}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Render writes the chart.
func (c *BarChart) Render(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	var max float64
	labelW := 0
	for i, v := range c.values {
		if v > max {
			max = v
		}
		if len(c.labels[i]) > labelW {
			labelW = len(c.labels[i])
		}
	}
	for i, v := range c.values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		if n == 0 && v > 0 {
			n = 1
		}
		fmt.Fprintf(w, "%-*s |%s %.2f %s\n", labelW, c.labels[i], strings.Repeat("#", n), v, c.Unit)
	}
}

// HumanBytes formats a byte count in binary units.
func HumanBytes(b int64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.2f TiB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// SizeLabel formats a request size the way Figure 1's x-axis does.
func SizeLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%gKiB", float64(b)/1024)
	}
}
