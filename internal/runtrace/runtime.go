package runtrace

import (
	"runtime"
	"sync"
	"time"

	"flashwear/internal/obs"
)

// memSampler caches runtime.ReadMemStats across the gauges that share
// it: a /metrics scrape renders several heap/GC families back to back,
// and ReadMemStats stops the world, so one read per scrape is plenty.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	ms   runtime.MemStats
	once bool
}

const memSampleMaxAge = time.Second

func (s *memSampler) read(f func(*runtime.MemStats) float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.once || time.Since(s.at) > memSampleMaxAge {
		runtime.ReadMemStats(&s.ms)
		s.at = time.Now()
		s.once = true
	}
	return f(&s.ms)
}

// RegisterRuntimeGauges registers <prefix>_runtime_* gauge families that
// read Go runtime state at scrape time: heap in use and reserved,
// live goroutines, cumulative GC pause seconds and GC cycle count.
func RegisterRuntimeGauges(r *obs.Registry, prefix string) {
	s := &memSampler{}
	r.GaugeFunc(prefix+"_runtime_goroutines",
		"Live goroutines in the serving process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(prefix+"_runtime_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return s.read(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }) })
	r.GaugeFunc(prefix+"_runtime_heap_sys_bytes",
		"Heap memory obtained from the OS (runtime.MemStats.HeapSys).",
		func() float64 { return s.read(func(ms *runtime.MemStats) float64 { return float64(ms.HeapSys) }) })
	r.GaugeFunc(prefix+"_runtime_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time, seconds.",
		func() float64 {
			return s.read(func(ms *runtime.MemStats) float64 { return float64(ms.PauseTotalNs) / 1e9 })
		})
	r.GaugeFunc(prefix+"_runtime_gc_cycles_total",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		func() float64 { return s.read(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }) })
}
