package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// flagSet wraps flag.FlagSet with the small conveniences the subcommands
// share: exit-on-usage-error parsing, positional-argument access, and a
// was-this-flag-set probe.
type flagSet struct {
	*flag.FlagSet
}

func newFlagSet(name string) *flagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &flagSet{FlagSet: fs}
}

func (fs *flagSet) parse(args []string) {
	fs.Parse(args) // ExitOnError: never returns an error
}

// changed reports whether the named flag was set explicitly.
func (fs *flagSet) changed(name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// arg returns positional argument i or a usage error naming what was
// missing.
func (fs *flagSet) arg(i int, what string) (string, error) {
	if fs.NArg() <= i {
		return "", fmt.Errorf("missing %s argument", what)
	}
	return fs.Arg(i), nil
}

func readAllStdin() ([]byte, error) {
	return io.ReadAll(os.Stdin)
}
